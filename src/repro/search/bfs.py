"""The breadth-first search engine itself.

With a :class:`repro.telemetry.Telemetry` attached the engine narrates
the whole search: a ``search.begin``/``search.end`` span, one
``search.eval`` event per tested configuration (label, level, pass/fail,
cycles, wall time, phase), ``search.queue`` depth samples after every
batch, ``search.descend`` partition/expansion decisions, and a
``search.refine`` summary of the second phase.  A baseline ``vm.opcodes``
census of the uninstrumented workload is emitted at span start so every
trace carries the VM-level profile the prioritization runs on.
"""

from __future__ import annotations

import contextlib
import heapq
import time
from collections import deque
from dataclasses import dataclass

from repro.config.generator import build_tree
from repro.config.model import (
    Config,
    ConfigNode,
    LEVEL_BLOCK,
    LEVEL_FUNCTION,
    LEVEL_INSN,
    LEVEL_MODULE,
    Policy,
    ProgramTree,
)
from repro.search.evaluator import Evaluator
from repro.search.results import REASON_PRUNED, EvalRecord, SearchResult
from repro.telemetry import NULL_TELEMETRY

_LEVEL_RANK = {
    LEVEL_MODULE: 0,
    LEVEL_FUNCTION: 1,
    LEVEL_BLOCK: 2,
    LEVEL_INSN: 3,
}


@dataclass(frozen=True, slots=True)
class SearchOptions:
    """Knobs of the automatic search.

    stop_level:
        Finest granularity the descent may reach (paper: "the search can
        also be configured to stop at basic blocks or functions, allowing
        for faster convergence with coarser results").
    partition:
        Binary partitioning of large failed aggregates (first paper
        optimization).
    partition_threshold:
        Minimum child count for partitioning to kick in.
    prioritize:
        Profile-count prioritization (second paper optimization).
    max_configs:
        Safety budget on evaluated configurations.
    refine:
        Second search phase (suggested in the paper's Section 3.1): when
        the union of individually passing replacements fails, greedily
        drop the hottest passing items until a composable subset passes.
    refine_budget:
        Evaluation budget for the refinement phase.
    workers:
        Parallel evaluation processes (paper: the search "can launch many
        independent tests if cores are available").  1 = serial; >1 uses
        a fork-based process pool, falling back to serial on platforms
        without fork.  Results are identical either way.
    incremental:
        Thread the incremental-evaluation caches (block-template
        instrumentation cache, persistent VM with compiled-closure reuse,
        semantic config dedup) through the evaluators.  Semantics-
        invisible; ``False`` is the escape hatch that restores cold-path
        evaluation for every config (CLI: ``--no-incremental``).
    analysis:
        Shadow-value analysis guidance (``repro.analysis``): run the
        workload once under the shadow observer before the search, then
        (1) seed prioritization with predicted-replaceable items ahead
        of profile counts and (2) prune candidates whose shadow error
        already exceeds the workload's verification bound.  Pruned items
        are treated exactly like observed failures (recorded in history
        with ``reason="pruned"`` and descended), so the final composed
        configuration is identical to the unguided search as long as the
        predictor never prunes an item that would have passed —
        differential tests assert exactly that.  ``False`` (the CLI's
        ``--no-analysis``) keeps the cold path untouched.

        ``"auto"`` makes the engine decide per run whether the guidance
        pays for itself (:mod:`repro.analysis.economics`): the first
        search of a workload analyzes and measures; later searches skip
        the shadow run when its measured wall cost exceeds the
        evaluation time the measured prune count is predicted to save
        (mg.W-style workloads, where guidance was a net wall-time
        loss).  ``True`` keeps the unconditional-analysis contract —
        callers relying on pruning behaviour are unaffected by auto
        mode existing.  Every decision is recorded as a
        ``search.guidance`` telemetry event.
    retry_limit / retry_backoff:
        Crash-fault tolerance of distributed evaluation (``workers > 1``
        or ``cluster``): a configuration whose worker dies is retried at
        most ``retry_limit`` times with ``retry_backoff * 2**(attempt-1)``
        seconds of backoff; a config still crashing after that is
        recorded as failed with reason ``worker_crash`` instead of
        aborting the campaign (shared :mod:`repro.search.retry` policy).
    cluster:
        ``HOST:PORT`` to serve the search's evaluations on (port 0 lets
        the OS pick).  Non-empty switches the engine to the network
        :class:`~repro.cluster.ClusterEvaluator`: batches are leased to
        ``repro worker`` processes instead of a local fork pool.
        ``workers`` then only sets the batch size (how many leases can
        be outstanding at once), not a process count.  Results are
        byte-identical to a serial search regardless of worker count,
        joins, or crashes.
    lease_timeout:
        Cluster only: seconds of worker silence before its leases are
        requeued (workers heartbeat at a quarter of this).
    lattice:
        Precision lattice spec (:func:`repro.lattice.parse_lattice`),
        e.g. ``"f64,f32,bf16,f16"``.  The main BFS always searches the
        first narrow rung (f32, the paper's binary double/single
        search); any further rungs add a *lattice descent* phase that
        re-tests every passing item one width narrower, descending
        structurally on failure, until the bottom of the lattice.  The
        default binary lattice runs zero descent evaluations and is
        byte-identical to the historical two-level search.  With
        ``analysis`` on, descent candidates whose observed value ranges
        cannot be represented at the next width are pruned like
        predicted failures (the tentpole's width seeding).
    """

    stop_level: str = LEVEL_INSN
    partition: bool = True
    partition_threshold: int = 4
    prioritize: bool = True
    max_configs: int = 20_000
    refine: bool = False
    refine_budget: int = 64
    workers: int = 1
    incremental: bool = True
    analysis: bool | str = False
    retry_limit: int = 3
    retry_backoff: float = 0.05
    cluster: str = ""
    lease_timeout: float = 30.0
    lattice: str = "f64,f32"

    def __post_init__(self) -> None:
        if self.stop_level not in _LEVEL_RANK:
            raise ValueError(f"bad stop_level {self.stop_level!r}")
        if self.analysis not in (True, False, "auto"):
            raise ValueError(
                f"analysis must be True, False or 'auto', "
                f"not {self.analysis!r}"
            )
        from repro.lattice import parse_lattice

        parse_lattice(self.lattice)  # raises LatticeError on a bad spec


class _Item:
    """A work-queue entry: one node, or a group of sibling nodes."""

    __slots__ = ("nodes", "is_group")

    def __init__(self, nodes: list[ConfigNode], is_group: bool) -> None:
        self.nodes = nodes
        self.is_group = is_group

    def label(self) -> str:
        if not self.is_group:
            return self.nodes[0].node_id
        first, last = self.nodes[0].node_id, self.nodes[-1].node_id
        return f"[{first}..{last}]({len(self.nodes)})"

    def flags(self, policy: Policy = Policy.SINGLE) -> dict[str, Policy]:
        return {n.node_id: policy for n in self.nodes}


class SearchEngine:
    """Drives the automatic search for one workload.

    Parameters
    ----------
    workload:
        Object with ``name``, ``program``, ``run``, ``verify`` and
        ``profile()`` (exec counts of the original program).
    options:
        :class:`SearchOptions`.
    base_config:
        Optional starting configuration carrying e.g. user-set IGNORE
        flags (the paper's escape hatch for RNG-style code); its flags are
        merged into every tested configuration.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; see the module
        docstring for the events a traced search produces.
    report:
        Optional pre-computed :class:`repro.analysis.AnalysisReport`.
        Only consulted when ``options.analysis`` is on; when omitted the
        engine runs the analysis itself at search start.
    campaign:
        Optional :class:`repro.campaign.Campaign`.  The engine journals
        its full frontier state (queue, passing set, history, counters)
        to the campaign after every batch, resumes from the campaign's
        latest checkpoint when one exists, and uses the campaign's
        result store unless ``store`` overrides it.  The campaign stays
        open after :meth:`run` — its owner closes it.
    store:
        Optional :class:`repro.store.ResultStore` threaded into the
        evaluator: decided outcomes are replayed instead of re-executed
        (resume + warm start), new outcomes are persisted as they
        arrive.
    """

    def __init__(
        self,
        workload,
        options: SearchOptions | None = None,
        base_config: Config | None = None,
        evaluator: Evaluator | None = None,
        telemetry=None,
        report=None,
        campaign=None,
        store=None,
    ) -> None:
        self.workload = workload
        self.options = options or SearchOptions()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.tree: ProgramTree = (
            base_config.tree if base_config is not None else build_tree(workload.program)
        )
        self._campaign = campaign
        if store is None and campaign is not None:
            store = campaign.store
        self._store = store
        store_kwargs = {}
        if store is not None:
            from repro.store import workload_id

            store_kwargs = {
                "store": store, "store_workload": workload_id(workload),
            }
        # The engine closes evaluators it created itself (worker pools,
        # pending trace flushes) when run() exits; externally supplied
        # evaluators stay open for their owner to reuse.
        self._owns_evaluator = evaluator is None
        if evaluator is not None:
            self.evaluator = evaluator
            if getattr(evaluator, "lattice", None) is None:
                # Store digests must be salted with the lattice the
                # policies refer to (cross-lattice dedup is never sound).
                try:
                    evaluator.lattice = self.options.lattice
                except AttributeError:
                    pass
        elif self.options.cluster:
            from repro.search.retry import RetryPolicy
            from repro.cluster import ClusterEvaluator

            self.evaluator = ClusterEvaluator(
                workload, self.tree, bind=self.options.cluster,
                telemetry=self.telemetry,
                incremental=self.options.incremental,
                retry=RetryPolicy(
                    self.options.retry_limit, self.options.retry_backoff
                ),
                lease_timeout=self.options.lease_timeout,
                lattice=self.options.lattice,
                **store_kwargs,
            )
        elif self.options.workers > 1:
            from repro.search.parallel import ParallelEvaluator

            self.evaluator = ParallelEvaluator(
                workload, self.tree, self.options.workers,
                telemetry=self.telemetry,
                incremental=self.options.incremental,
                retry_limit=self.options.retry_limit,
                retry_backoff=self.options.retry_backoff,
                lattice=self.options.lattice,
                **store_kwargs,
            )
        else:
            self.evaluator = Evaluator(
                workload, telemetry=self.telemetry,
                incremental=self.options.incremental,
                lattice=self.options.lattice,
                **store_kwargs,
            )
        self.base_config = base_config or Config.all_double(self.tree)
        self._seq = 0
        self._heap: list = []
        self._fifo: deque = deque()
        self._profile: dict[int, int] = {}
        self._report = report
        self._guide = None  # built in _run when options.analysis is on
        self._analysis_wall = 0.0
        self._pruned = 0
        self._batches = 0
        self._resumed = False

    @property
    def analysis_report(self):
        """The :class:`repro.analysis.AnalysisReport` the search used
        (None before a guided run, or when ``options.analysis`` is off)."""
        return self._report

    # -- queue ------------------------------------------------------------------

    def _weight(self, item: _Item) -> int:
        total = 0
        for node in item.nodes:
            for insn in node.instructions():
                total += self._profile.get(insn.addr, 0)
        return total

    def _addrs(self, item: _Item) -> list[int]:
        return [
            insn.addr for node in item.nodes for insn in node.instructions()
        ]

    def _push(self, item: _Item) -> None:
        if self.options.prioritize:
            self._seq += 1
            guide = self._guide
            if guide is not None:
                # Predicted-replaceable items rank ahead of profile
                # counts (tentpole: analysis seeds prioritization).
                key = (
                    -guide.replaceable_rank(self._addrs(item)),
                    -self._weight(item),
                    self._seq,
                    item,
                )
            else:
                key = (-self._weight(item), self._seq, item)
            heapq.heappush(self._heap, key)
        else:
            self._fifo.append(item)

    def _pop(self) -> _Item | None:
        if self.options.prioritize:
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[-1]
        if not self._fifo:
            return None
        return self._fifo.popleft()

    # -- descent ------------------------------------------------------------------

    def _descend(self, item: _Item) -> None:
        opts = self.options
        tel = self.telemetry
        if item.is_group:
            if len(item.nodes) > 1:
                if tel.enabled:
                    tel.emit("search.descend", label=item.label(), action="split")
                mid = len(item.nodes) // 2
                self._push(_Item(item.nodes[:mid], True))
                self._push(_Item(item.nodes[mid:], True))
            else:
                self._descend(_Item(item.nodes, False))
            return
        node = item.nodes[0]
        if node.level == LEVEL_INSN:
            if tel.enabled:
                tel.emit("search.descend", label=item.label(), action="stop")
            return  # cannot subdivide an instruction
        if _LEVEL_RANK[node.level] >= _LEVEL_RANK[opts.stop_level]:
            if tel.enabled:
                tel.emit("search.descend", label=item.label(), action="stop")
            return  # descent capped by stop_level
        children = node.children
        if opts.partition and len(children) > opts.partition_threshold:
            if tel.enabled:
                tel.emit("search.descend", label=item.label(), action="partition")
            mid = len(children) // 2
            self._push(_Item(children[:mid], True))
            self._push(_Item(children[mid:], True))
        else:
            if tel.enabled:
                tel.emit("search.descend", label=item.label(), action="expand")
            for child in children:
                self._push(_Item([child], False))

    # -- lattice descent ----------------------------------------------------------

    def _lattice_split(self, item: _Item) -> list[_Item] | None:
        """The sub-items a failed descent candidate breaks into, or None
        when *item* cannot be subdivided (single instruction, stop_level
        cap) and must stay at its current width.  Mirrors :meth:`_descend`
        structurally — groups halve, aggregates partition or expand."""
        opts = self.options
        if item.is_group and len(item.nodes) > 1:
            mid = len(item.nodes) // 2
            return [_Item(item.nodes[:mid], True), _Item(item.nodes[mid:], True)]
        node = item.nodes[0]
        if node.level == LEVEL_INSN:
            return None
        if _LEVEL_RANK[node.level] >= _LEVEL_RANK[opts.stop_level]:
            return None
        children = node.children
        if opts.partition and len(children) > opts.partition_threshold:
            mid = len(children) // 2
            return [_Item(children[:mid], True), _Item(children[mid:], True)]
        return [_Item([child], False) for child in children]

    def _lattice_descend(self, passing: list, history: list) -> list:
        """Third search phase (the precision-lattice tentpole): walk every
        passing item down the remaining lattice rungs.

        Returns ``[(item, policy), ...]`` — the disjoint passing items,
        each at the narrowest width that verified for it.  For each rung
        below f32 the candidates (items settled at the previous rung) are
        evaluated individually, exactly like the main loop's phase-1
        items: the item's nodes at the rung's policy, everything else
        double.  A failing candidate splits structurally and its pieces
        re-enter the same rung at the previous width; unsplittable items
        keep the width they already verified at.  With a binary lattice
        the rung list below f32 is empty and this method is a no-op —
        no evaluations, no history records, `levels` == `passing`.
        """
        from repro.lattice import parse_lattice

        lattice = parse_lattice(self.options.lattice)
        levels = [[item, Policy.SINGLE] for item in passing]
        narrow = lattice.narrow_widths
        if len(narrow) < 2 or not passing:
            return [(item, policy) for item, policy in levels]

        tel = self.telemetry
        guide = self._guide
        batch_size = max(1, self.options.workers)

        for rung in range(1, len(narrow)):
            width = narrow[rung]
            prev_policy = narrow[rung - 1].policy
            policy = width.policy
            phase = f"lattice:{width.name}"
            queue = deque(e for e in levels if e[1] is prev_policy)
            while queue:
                if self.evaluator.evaluations >= self.options.max_configs:
                    return [(item, p) for item, p in levels]

                def split(entry) -> None:
                    pieces = self._lattice_split(entry[0])
                    if pieces is None:
                        return  # keeps the width it verified at
                    pos = levels.index(entry)
                    replacements = [[piece, prev_policy] for piece in pieces]
                    levels[pos : pos + 1] = replacements
                    queue.extend(replacements)

                batch: list = []
                while queue and len(batch) < batch_size:
                    entry = queue.popleft()
                    if guide is not None and guide.predict_unfit(
                        self._addrs(entry[0]), width
                    ):
                        # Width seeding: the shadow run saw magnitudes
                        # this width cannot represent, so skip the
                        # evaluation and treat it as a failure.
                        self._pruned += 1
                        history.append(
                            EvalRecord(
                                entry[0].label(), False,
                                phase=phase, reason=REASON_PRUNED,
                            )
                        )
                        if tel.enabled:
                            tel.count("analysis.pruned")
                            tel.emit(
                                "search.prune",
                                label=entry[0].label(),
                                level=entry[0].nodes[0].level,
                                width=width.name,
                            )
                        split(entry)
                        continue
                    batch.append(entry)
                if not batch:
                    continue
                configs = []
                for entry in batch:
                    config = self.base_config.copy()
                    config.flags.update(entry[0].flags(policy))
                    configs.append(config)
                batch_start = time.perf_counter()
                outcomes = self._evaluate_ordered(
                    [entry[0] for entry in batch], configs
                )
                per_eval = (time.perf_counter() - batch_start) / len(batch)
                for entry, outcome in zip(batch, outcomes):
                    passed, cycles, trap, reason = outcome
                    history.append(
                        EvalRecord(
                            entry[0].label(), passed, cycles, trap,
                            wall_s=per_eval, phase=phase, reason=reason,
                        )
                    )
                    if tel.enabled:
                        tel.emit(
                            "search.eval",
                            label=entry[0].label(),
                            level=entry[0].nodes[0].level,
                            passed=passed,
                            cycles=cycles,
                            trap=trap,
                            reason=reason,
                            wall_s=round(per_eval, 6),
                            phase=phase,
                        )
                    if passed:
                        entry[1] = policy
                    else:
                        split(entry)
        return [(item, p) for item, p in levels]

    # -- main loop --------------------------------------------------------------------

    def _evaluate_ordered(self, items: list[_Item], configs: list[Config]) -> list:
        """Evaluate a batch, submitting configs in program order.

        Sibling structures flip adjacent policy slices, so sorting the
        *submission* order by node id maximizes template/closure prefix
        sharing inside the incremental caches.  Outcomes are mapped back
        to item order before any search decision is made, so the descent
        trajectory — and therefore the whole search — is unchanged.
        """
        if len(items) < 2:
            return self.evaluator.evaluate_batch(configs)
        order = sorted(
            range(len(items)), key=lambda i: items[i].nodes[0].node_id
        )
        ordered = self.evaluator.evaluate_batch([configs[i] for i in order])
        outcomes: list = [None] * len(items)
        for pos, i in enumerate(order):
            outcomes[i] = ordered[pos]
        return outcomes

    def run(self) -> SearchResult:
        with contextlib.ExitStack() as stack:
            if self._owns_evaluator:
                stack.enter_context(self.evaluator)
            try:
                result = self._run()
            except BaseException:
                # A Ctrl-C (or any crash) mid-batch: the journal already
                # holds the last batch boundary and the store every
                # outcome decided since, so just record the status — the
                # ExitStack still reaps worker pools on the way out.
                if self._campaign is not None:
                    self._campaign.mark_interrupted()
                raise
            if self._campaign is not None:
                self._campaign.mark_complete(result.row())
            return result

    def _baseline_census(self) -> None:
        """Run the uninstrumented workload once with telemetry attached so
        the trace opens with a ``vm.opcodes`` census of the original
        program (the profile the prioritization heuristic ranks by)."""
        from repro.vm.errors import VmTrap
        from repro.vm.machine import VM

        workload = self.workload
        vm = VM(
            workload.program,
            stack_words=getattr(workload, "stack_words", 8192),
            max_steps=getattr(workload, "max_steps", 200_000_000),
            telemetry=self.telemetry,
        )
        try:
            vm.run()
        except VmTrap:
            pass  # trap event already emitted; census below still valid
        vm.publish()

    def _setup_guide(self) -> None:
        """Build the analysis guide (running the shadow analysis if no
        report was supplied).  Imported lazily so searches with
        ``analysis=False`` never touch the subsystem."""
        from repro.analysis import SearchGuide, analyze

        if self._report is None:
            self._report = analyze(self.workload, telemetry=self.telemetry)
        self._guide = SearchGuide(self._report, self.workload)

    def _maybe_setup_guide(self, workload_name: str) -> None:
        """Honour ``options.analysis``: unconditionally build the guide
        for ``True``; for ``"auto"`` ask the economics registry whether
        the shadow run is predicted to pay for itself, and record the
        verdict either way.  The guide build is timed so the search can
        report what the guidance actually cost."""
        tel = self.telemetry
        if self.options.analysis == "auto":
            from repro.analysis import economics

            decision = economics.should_analyze(workload_name)
            if tel.enabled:
                tel.emit(
                    "search.guidance",
                    workload=workload_name,
                    analyze=decision.analyze,
                    reason=decision.reason,
                    predicted_saving_s=round(decision.predicted_saving_s, 4),
                    predicted_cost_s=round(decision.predicted_cost_s, 4),
                )
            if not decision.analyze:
                return
        guide_start = time.perf_counter()
        self._setup_guide()
        self._analysis_wall = time.perf_counter() - guide_start

    def _record_guidance_economics(self, workload_name: str, result) -> None:
        """After a guided run, store what the guidance cost and saved so
        later ``analysis="auto"`` searches of this workload can decide
        from measurement instead of hope."""
        from repro.analysis import economics

        evaluated = result.configs_tested
        if evaluated <= 0:
            return
        eval_wall = max(0.0, result.wall_seconds - self._analysis_wall)
        economics.record(
            workload_name,
            self._analysis_wall,
            eval_wall / evaluated,
            self._pruned,
        )

    # -- campaign journal (checkpoint/resume) -------------------------------------

    def _item_key(self, item: _Item, seq: int):
        """The priority-heap key `_push` would build for *item* at *seq*.

        Factored out so :meth:`_restore` reconstructs the exact ordering
        a fresh run would have had: weights and analysis ranks are
        recomputed (both are deterministic functions of the profile and
        the report), only the sequence number is journaled.
        """
        guide = self._guide
        if guide is not None:
            return (
                -guide.replaceable_rank(self._addrs(item)),
                -self._weight(item),
                seq,
                item,
            )
        return (-self._weight(item), seq, item)

    def _snapshot(self, history: list, passing: list) -> dict:
        """One self-contained, JSON-serializable frontier snapshot.

        Everything a resumed engine needs that is not deterministically
        recomputable: the queue (node ids + their priority sequence
        numbers), the passing set, the evaluation history, and the
        counters.  Tree structure, weights, and analysis verdicts are
        *not* journaled — they are rebuilt from the workload, which is
        what keeps snapshots small and version-tolerant.
        """
        if self.options.prioritize:
            # Heap entries sorted by key so the journal line is
            # deterministic; heapify on restore rebuilds the same heap.
            queue = [
                [key[-2], key[-1].is_group, [n.node_id for n in key[-1].nodes]]
                for key in sorted(self._heap, key=lambda k: k[:-1])
            ]
        else:
            queue = [
                [None, item.is_group, [n.node_id for n in item.nodes]]
                for item in self._fifo
            ]
        return {
            "batch": self._batches,
            "seq": self._seq,
            "evaluations": self.evaluator.evaluations,
            "decided": sorted(getattr(self.evaluator, "decided", ())),
            "pruned": self._pruned,
            "queue": queue,
            "passing": [
                [item.is_group, [n.node_id for n in item.nodes]]
                for item in passing
            ],
            "history": [
                [r.label, r.passed, r.cycles, r.trap, r.wall_s, r.phase, r.reason]
                for r in history
            ],
        }

    def _restore(self, snap: dict) -> tuple[list, list]:
        """Rebuild engine state from a journal snapshot; returns the
        restored (history, passing) lists.  Must run after the profile
        and analysis guide are set up — heap keys are recomputed."""
        by_id = self.tree.by_id
        self._seq = snap["seq"]
        self._pruned = snap["pruned"]
        self._batches = snap["batch"]
        # Evaluations already decided before the interruption count
        # against max_configs and configs_tested exactly as they did
        # then; the store replays them without re-executing, and the
        # decided set keeps replay counting identical to an
        # uninterrupted run.
        self.evaluator.evaluations = snap["evaluations"]
        self.evaluator.decided = set(snap.get("decided", ()))
        for seq, is_group, node_ids in snap["queue"]:
            item = _Item([by_id[i] for i in node_ids], is_group)
            if self.options.prioritize:
                self._heap.append(self._item_key(item, seq))
            else:
                self._fifo.append(item)
        heapq.heapify(self._heap)
        passing = [
            _Item([by_id[i] for i in node_ids], is_group)
            for is_group, node_ids in snap["passing"]
        ]
        history = [
            EvalRecord(
                label, passed, cycles, trap,
                wall_s=wall_s, phase=phase, reason=reason,
            )
            for label, passed, cycles, trap, wall_s, phase, reason
            in snap["history"]
        ]
        self._resumed = True
        return history, passing

    def _run(self) -> SearchResult:
        tel = self.telemetry
        start = time.perf_counter()
        self._profile = self.workload.profile() if self.options.prioritize else {}
        workload_name = getattr(self.workload, "name", self.tree.program_name)
        if self.options.analysis:
            self._maybe_setup_guide(workload_name)
        if tel.enabled:
            tel.emit(
                "search.begin",
                workload=workload_name,
                candidates=self.tree.candidate_count,
                stop_level=self.options.stop_level,
                partition=self.options.partition,
                prioritize=self.options.prioritize,
                refine=self.options.refine,
                workers=self.options.workers,
            )
            self._baseline_census()

        campaign = self._campaign
        snap = campaign.latest_checkpoint() if campaign is not None else None
        if snap is not None:
            history, passing = self._restore(snap)
            if tel.enabled:
                tel.emit(
                    "campaign.resume",
                    batch=self._batches,
                    tested=self.evaluator.evaluations,
                )
        else:
            for root in self.tree.roots:
                self._push(_Item([root], False))
            history = []
            passing = []
        batch_size = max(1, self.options.workers)
        guide = self._guide

        while True:
            if self.evaluator.evaluations >= self.options.max_configs:
                break
            items: list[_Item] = []
            while len(items) < batch_size:
                item = self._pop()
                if item is None:
                    break
                if guide is not None and guide.predict_fail(self._addrs(item)):
                    # Analysis prune: the shadow run already showed this
                    # item's error exceeding the verification bound, so
                    # skip the evaluation and treat it as a failure
                    # (recorded + descended exactly like one).
                    self._pruned += 1
                    history.append(
                        EvalRecord(
                            item.label(), False, reason=REASON_PRUNED
                        )
                    )
                    if tel.enabled:
                        tel.count("analysis.pruned")
                        tel.emit(
                            "search.prune",
                            label=item.label(),
                            level=item.nodes[0].level,
                        )
                    self._descend(item)
                    continue
                items.append(item)
            if not items:
                break
            configs = []
            for item in items:
                config = self.base_config.copy()
                config.flags.update(item.flags())
                configs.append(config)
            batch_start = time.perf_counter()
            outcomes = self._evaluate_ordered(items, configs)
            per_eval = (time.perf_counter() - batch_start) / len(items)
            for item, outcome in zip(items, outcomes):
                passed, cycles, trap, reason = outcome
                history.append(
                    EvalRecord(
                        item.label(), passed, cycles, trap,
                        wall_s=per_eval, reason=reason,
                    )
                )
                if tel.enabled:
                    tel.emit(
                        "search.eval",
                        label=item.label(),
                        level=item.nodes[0].level,
                        passed=passed,
                        cycles=cycles,
                        trap=trap,
                        reason=reason,
                        wall_s=round(per_eval, 6),
                        phase="bfs",
                    )
                if passed:
                    passing.append(item)
                else:
                    self._descend(item)
            if tel.enabled:
                tel.emit(
                    "search.queue",
                    depth=len(self._heap) + len(self._fifo),
                    tested=self.evaluator.evaluations,
                )
            self._batches += 1
            if campaign is not None:
                campaign.checkpoint(self._snapshot(history, passing))
                if tel.enabled:
                    tel.emit(
                        "campaign.checkpoint",
                        batch=self._batches,
                        tested=self.evaluator.evaluations,
                    )

        # Lattice descent: re-test passing items one width narrower at a
        # time.  The binary lattice has no rungs below f32 — zero extra
        # evaluations, and `levels` degenerates to `passing` at SINGLE.
        levels = self._lattice_descend(passing, history)

        # Compose the final configuration: union of everything that
        # passed, each item at the narrowest width it settled on.
        final = self.base_config.copy()
        for item, policy in levels:
            final.flags.update(item.flags(policy))

        final_verified = False
        if passing:
            eval_start = time.perf_counter()
            passed, cycles, trap, reason = self.evaluator.evaluate(final)
            wall = time.perf_counter() - eval_start
            history.append(
                EvalRecord(
                    "FINAL(union)", passed, cycles, trap,
                    wall_s=wall, phase="final", reason=reason,
                )
            )
            final_verified = passed
            if tel.enabled:
                tel.emit(
                    "search.eval",
                    label="FINAL(union)",
                    level="union",
                    passed=passed,
                    cycles=cycles,
                    trap=trap,
                    reason=reason,
                    wall_s=round(wall, 6),
                    phase="final",
                )

        profile = self.workload.profile()
        result = SearchResult(
            workload=workload_name,
            candidates=self.tree.candidate_count,
            configs_tested=self.evaluator.evaluations,
            final_config=final,
            final_verified=final_verified,
            static_pct=final.static_replaced_fraction(),
            dynamic_pct=final.dynamic_replaced_fraction(profile),
            history=history,
            wall_seconds=time.perf_counter() - start,
            analysis_used=self._guide is not None,
            analysis_pruned=self._pruned,
            resumed=self._resumed,
            store_replays=getattr(self.evaluator, "store_hits", 0),
        )

        if self.options.refine and passing and not final_verified:
            self._refine(result, passing, history, profile)
            result.configs_tested = self.evaluator.evaluations
            result.store_replays = getattr(self.evaluator, "store_hits", 0)
            result.wall_seconds = time.perf_counter() - start

        if self._guide is not None:
            self._record_guidance_economics(workload_name, result)

        if tel.enabled:
            tel.emit(
                "search.end",
                workload=workload_name,
                tested=result.configs_tested,
                final="pass" if result.final_verified else "fail",
                static_pct=round(result.static_pct * 100.0, 1),
                dynamic_pct=round(result.dynamic_pct * 100.0, 1),
                wall_s=round(result.wall_seconds, 6),
                pruned=self._pruned,
            )
        return result

    # -- second search phase (composition refinement) ----------------------------

    def _refine(
        self,
        result: SearchResult,
        passing: list,
        history: list,
        profile: dict,
    ) -> None:
        """Greedy composition search: drop the hottest passing items from
        the union until the composition verifies (or the budget runs out).

        Rationale: precision decisions interact, and the interaction is
        almost always mediated by the most frequently executed replaced
        code — dropping cold items rarely rescues a failing union.
        """
        self._profile = profile  # _weight uses it
        remaining = sorted(passing, key=self._weight)  # coldest first
        budget = [self.options.refine_budget]
        dropped: list = []

        tel = self.telemetry

        def compose(items):
            candidate = self.base_config.copy()
            for item in items:
                candidate.flags.update(item.flags())
            label = f"REFINE({len(items)} items)"
            eval_start = time.perf_counter()
            passed, cycles, trap, reason = self.evaluator.evaluate(candidate)
            wall = time.perf_counter() - eval_start
            budget[0] -= 1
            history.append(
                EvalRecord(
                    label, passed, cycles, trap,
                    wall_s=wall, phase="refine", reason=reason,
                )
            )
            if tel.enabled:
                tel.emit(
                    "search.eval",
                    label=label,
                    level="union",
                    passed=passed,
                    cycles=cycles,
                    trap=trap,
                    reason=reason,
                    wall_s=round(wall, 6),
                    phase="refine",
                )
            return passed, candidate

        kept = None
        while remaining and budget[0] > 0:
            passed, candidate = compose(remaining)
            if passed:
                kept = candidate
                break
            dropped.append(remaining.pop())  # drop the hottest remaining

        if kept is None:
            result.refined_config = self.base_config.copy()
            result.refined_verified = False
            result.refine_drops = len(dropped)
            if tel.enabled:
                tel.emit("search.refine", drops=len(dropped), verified=False)
            return

        # Re-add pass: some dropped items may compose fine once the true
        # offender is out; try them back in, coldest first.
        for item in sorted(dropped, key=self._weight):
            if budget[0] <= 0:
                break
            passed, candidate = compose(remaining + [item])
            if passed:
                remaining.append(item)
                kept = candidate

        result.refined_config = kept
        result.refined_verified = True
        result.refined_static_pct = kept.static_replaced_fraction()
        result.refined_dynamic_pct = kept.dynamic_replaced_fraction(profile)
        result.refine_drops = len(passing) - len(remaining)
        if tel.enabled:
            tel.emit(
                "search.refine", drops=result.refine_drops, verified=True
            )
