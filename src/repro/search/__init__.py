"""The automatic breadth-first configuration search (paper Section 2.2).

Starting from whole-module replacements, the search descends through the
program structure — module, function, basic block, instruction — testing
at each step whether replacing that structure with single precision still
passes the user-provided verification routine.  Two optimizations from
the paper are implemented:

* **binary partitioning** — a failed aggregate with many children is
  split into two equally-sized halves instead of enqueuing every child
  individually;
* **profile prioritization** — candidates are tested most-frequently-
  executed first, based on an initial profiling run.

The union of all individually passing replacements forms the *final*
configuration, which is itself verified (and, as the paper observes, may
fail: precision decisions are not independent).
"""

from repro.search.bfs import SearchEngine, SearchOptions
from repro.search.results import SearchResult, EvalRecord
from repro.search.evaluator import Evaluator

__all__ = [
    "SearchEngine",
    "SearchOptions",
    "SearchResult",
    "EvalRecord",
    "Evaluator",
]
