"""Parent-side batch planning shared by the distributed evaluators.

Both the fork-pool :class:`~repro.search.parallel.ParallelEvaluator`
and the network :class:`~repro.cluster.ClusterEvaluator` receive batches
of configurations from the search engine and must ship *only* the jobs a
serial :class:`~repro.search.evaluator.Evaluator` would actually have
executed — everything else is answered locally so ``evaluations`` /
``cache_hits`` / ``store_hits`` counters (and therefore the search's
``configs_tested``) are identical across all three backends.  The
filtering rules, in order:

1. flag-identical repeats and configs already in the outcome cache are
   cache hits;
2. (incremental) configs whose *resolved policy map* matches a cached or
   already-planned one are semantic duplicates — answered by the twin's
   outcome, never shipped;
3. configs decided by the result store in an earlier run are replayed,
   counting toward ``evaluations`` only the first time this campaign
   sees them (the ``decided`` digest set, journaled across resumes).

The evaluator object just needs the shared counter/cache protocol the
two backends already have (``cache``, ``semantic_cache``, ``decided``,
``evaluations``, ``executions``, ``store``/``store_hits``,
``telemetry``, ``incremental``, ``_store_id()``).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.config.model import Config
from repro.search.evaluator import semantic_key


class PlannedJob(NamedTuple):
    """One configuration that survived deduplication and must execute."""

    key: frozenset          # flag-map identity
    skey: tuple | None      # semantic identity (None when non-incremental)
    digest: str             # policy digest ("" without a store)
    config: Config


class BatchPlan(NamedTuple):
    """What :func:`plan_batch` decided about one engine batch."""

    keys: list              # flag key per input config (result lookup order)
    jobs: list              # list[PlannedJob] to actually execute
    alias: dict             # flag key -> job position (semantic twins)
    store_replays: int      # outcomes replayed from the result store


def plan_batch(ev, configs: list[Config]) -> BatchPlan:
    """Dedup *configs* against caches and the result store.

    Mutates the evaluator's caches/counters exactly as the serial
    evaluator would (store replays recorded, telemetry ``store.hit``
    events emitted); execution of the surviving jobs — and the matching
    :func:`record_batch` call — is the backend's business.
    """
    keys = [frozenset(c.flags.items()) for c in configs]
    jobs: list[PlannedJob] = []
    job_index: dict = {}      # flag key -> job position
    alias: dict = {}          # flag key -> job position (semantic dup)
    skey_index: dict = {}     # semantic key -> job position
    store_replays = 0
    for key, config in zip(keys, configs):
        if key in ev.cache or key in job_index or key in alias:
            continue
        skey = None
        policies = None
        if ev.incremental:
            policies = config.instruction_policies()
            skey = semantic_key(policies)
            hit = ev.semantic_cache.get(skey)
            if hit is not None:
                ev.cache[key] = hit
                continue
            pos = skey_index.get(skey)
            if pos is not None:
                alias[key] = pos
                continue
        digest = ""
        if ev.store is not None:
            from repro.store import policy_digest

            if policies is None:
                policies = config.instruction_policies()
            digest = policy_digest(policies, getattr(ev, "lattice", None))
            stored = ev.store.get(ev._store_id(), digest)
            if stored is not None:
                # Decided in a previous run: replay, don't execute.
                # Counts toward evaluations only the first time this
                # campaign sees the config (see ``decided``).
                ev.cache[key] = stored
                if skey is not None:
                    ev.semantic_cache[skey] = stored
                if digest not in ev.decided:
                    ev.decided.add(digest)
                    ev.evaluations += 1
                ev.store_hits += 1
                store_replays += 1
                if ev.telemetry.enabled:
                    ev.telemetry.count("store.hits")
                    ev.telemetry.emit("store.hit", key=digest[:12])
                continue
        if skey is not None:
            skey_index[skey] = len(jobs)
        job_index[key] = len(jobs)
        jobs.append(PlannedJob(key, skey, digest, config))
    return BatchPlan(keys, jobs, alias, store_replays)


def record_batch(ev, plan: BatchPlan, outcomes: list, batch_wall: float) -> list:
    """Fold executed *outcomes* (one per planned job) back into the
    evaluator's caches, counters, store, and telemetry; returns the
    batch's results in input order."""
    keys, jobs, alias, store_replays = plan
    if jobs:
        telemetry = ev.telemetry
        for (key, skey, digest, _config), outcome in zip(jobs, outcomes):
            ev.cache[key] = outcome
            if skey is not None:
                ev.semantic_cache[skey] = outcome
            ev.evaluations += 1
            ev.executions += 1
            if digest:
                ev.decided.add(digest)
            # Jobs run concurrently, so per-config wall time is the
            # batch wall amortized over its members.
            per_config_wall = batch_wall / len(jobs)
            if ev.store is not None and digest:
                ev.store.put(
                    ev._store_id(), digest, outcome,
                    wall_s=per_config_wall,
                )
            if telemetry.enabled:
                passed, cycles, trap, reason = outcome
                if trap:
                    telemetry.emit("vm.trap", message=trap)
                telemetry.emit(
                    "eval.config", passed=passed, cycles=cycles, trap=trap,
                    reason=reason,
                    wall_s=round(per_config_wall, 6),
                )
        for key, pos in alias.items():
            ev.cache[key] = outcomes[pos]

    results = [ev.cache[key] for key in keys]
    hits = len(keys) - len(jobs) - store_replays
    ev.cache_hits += hits
    if hits:
        ev.telemetry.count("eval.cache_hits", hits)
    return results
