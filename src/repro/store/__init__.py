"""Durable evaluation results (the campaign subsystem's ground truth).

The paper's breadth-first search spends essentially all of its wall time
*evaluating* instrumented configurations — hundreds of deterministic
(program, configuration) runs whose verdicts never change between
invocations.  :class:`ResultStore` makes those verdicts durable: every
:class:`~repro.search.results.EvalOutcome` is recorded in a SQLite
database keyed by ``(workload id, semantic config key)``, so an
interrupted search resumes from its last batch without re-running a
single decided configuration, and a *second* search over the same
workload (different :class:`~repro.search.bfs.SearchOptions`, a refine
pass, a CI re-run) warm-starts from everything already known.

Keys are content-addressed: the workload id hashes the program image the
search actually ran (name, class, code bytes, data image), and the config
key hashes the *resolved per-instruction policy map* — two configurations
whose flag maps differ but whose executables coincide share one row,
exactly like the evaluators' semantic cache.
"""

from repro.store.result_store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreCollisionError,
    StoreSchemaError,
    StoredOutcome,
    policy_digest,
    workload_id,
)

__all__ = [
    "SCHEMA_VERSION",
    "ResultStore",
    "StoreCollisionError",
    "StoreSchemaError",
    "StoredOutcome",
    "policy_digest",
    "workload_id",
]
