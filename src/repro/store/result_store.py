"""The SQLite-backed, content-addressed evaluation-result store.

Schema (version 1)
------------------
``meta``
    ``key TEXT PRIMARY KEY, value TEXT`` — carries ``schema_version``.
``outcomes``
    One row per decided evaluation, primary-keyed by
    ``(workload, key)``::

        workload  TEXT   -- workload_id(): name.class@sha256-prefix
        key       TEXT   -- policy_digest(): sha256 of the resolved
                         -- per-instruction policy map
        passed    INTEGER
        cycles    INTEGER
        trap      TEXT
        reason    TEXT   -- "" | trap | timeout | verify | worker_crash
        wall_s    REAL   -- wall time of the original evaluation
        created   REAL   -- unix timestamp of the first put

Rows are immutable: a second ``put`` of the identical outcome is a
no-op, a second ``put`` with a *different* outcome under the same key
raises :class:`StoreCollisionError` — evaluations are deterministic, so
a disagreement means the key no longer identifies the executable
(corrupted store, or a program change without a workload-id change) and
must never be silently overwritten.

The JSONL export is canonical — rows sorted by ``(workload, key)``,
object keys sorted — so ``store → reload → export`` is bit-exact
(property-tested) and exports diff cleanly across campaigns.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import struct
import threading
import time
from typing import Iterator, NamedTuple

from repro.search.results import EvalOutcome

#: bump when the key semantics or table shape change.  v2 (the precision
#: lattice) extended ``policy_digest`` keys: flag characters now include
#: the narrow widths ``b``/``h``, and non-binary lattices salt the digest
#: with a canonical lattice descriptor.  Every v1 row is a valid v2 row
#: (binary-lattice digests are bit-identical to v1), so opening a v1
#: store migrates it in place; any *other* version mismatch raises
#: StoreSchemaError rather than guessing.
SCHEMA_VERSION = 2


class StoreSchemaError(RuntimeError):
    """The database exists but carries an incompatible schema version."""


class StoreCollisionError(RuntimeError):
    """A put() disagreed with the outcome already recorded for its key."""


class StoredOutcome(NamedTuple):
    """One durable row (the outcome plus its provenance columns)."""

    workload: str
    key: str
    outcome: EvalOutcome
    wall_s: float
    created: float


def workload_id(workload) -> str:
    """Stable identity of *workload* for store keying.

    ``name.class@<sha256 prefix>`` where the digest covers the original
    program's code bytes, data image, entry point, and module list — the
    inputs that determine every evaluation verdict.  Recompiling the
    same source yields the same id; any change to the executable (new
    compiler flags, different problem class data) changes it, so stale
    outcomes can never leak across program versions.
    """
    program = workload.program
    digest = hashlib.sha256()
    digest.update(program.name.encode())
    digest.update(struct.pack("<q", program.entry))
    digest.update(program.text)
    digest.update(struct.pack(f"<{len(program.data_image)}Q", *program.data_image))
    digest.update("|".join(program.modules).encode())
    name = getattr(workload, "name", program.name)
    klass = getattr(workload, "klass", "-")
    return f"{name}.{klass}@{digest.hexdigest()[:16]}"


def policy_digest(policies: dict, lattice=None) -> str:
    """Content address of a resolved per-instruction policy map.

    The input is :meth:`repro.config.model.Config.instruction_policies`
    — address → :class:`~repro.config.model.Policy`.  Two configs whose
    flag maps differ but whose resolved maps coincide produce the same
    digest (they denote the same executable), mirroring the evaluators'
    semantic cache.

    *lattice* (a :class:`repro.lattice.Lattice` or spec string) names the
    precision lattice the policies refer to.  The binary f64->f32 lattice
    — and None — produce exactly the legacy (schema v1) digest, so old
    store rows stay addressable; any other lattice salts the digest with
    its canonical descriptor, so the same flag map searched over two
    different width chains can never dedup to one row.
    """
    digest = hashlib.sha256()
    if lattice is not None:
        from repro.lattice import parse_lattice

        lattice = parse_lattice(lattice)
        if not lattice.is_binary:
            digest.update(b"lattice:" + lattice.descriptor().encode() + b"\n")
    for addr in sorted(policies):
        digest.update(struct.pack("<q", addr))
        digest.update(policies[addr].value.encode())
    return digest.hexdigest()


class ResultStore:
    """Durable ``(workload id, semantic config key) -> EvalOutcome`` map.

    ``path`` may be a filesystem path or ``":memory:"`` (tests).  The
    store is also a context manager; :meth:`close` is idempotent and
    safe to call from ``finally`` blocks and interrupt handlers — every
    write is committed eagerly, so there is never buffered state to
    lose.

    One store may be shared across threads (the job service hands a
    single service-wide store to every concurrent campaign so outcomes
    dedup across tenants): the connection is opened with
    ``check_same_thread=False`` and every operation serialises on an
    internal lock, which also keeps the get-compare-insert sequence in
    :meth:`put` atomic against sibling threads.

    ``timeout`` is SQLite's busy timeout in seconds — how long to wait
    on a database locked by *another process* before giving up with
    ``sqlite3.OperationalError`` (the CLI uses a short timeout so a
    locked store is a prompt, documented exit code instead of a stall).
    """

    def __init__(self, path: str = ":memory:", timeout: float = 30.0) -> None:
        self.path = str(path)
        if self.path != ":memory:":
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
        self._db = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        self._lock = threading.RLock()
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._init_schema()

    # -- schema ---------------------------------------------------------------

    def _init_schema(self) -> None:
        db = self._db
        db.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        db.execute(
            "CREATE TABLE IF NOT EXISTS outcomes ("
            " workload TEXT NOT NULL,"
            " key TEXT NOT NULL,"
            " passed INTEGER NOT NULL,"
            " cycles INTEGER NOT NULL,"
            " trap TEXT NOT NULL,"
            " reason TEXT NOT NULL,"
            " wall_s REAL NOT NULL,"
            " created REAL NOT NULL,"
            " PRIMARY KEY (workload, key))"
        )
        row = db.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            db.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            db.commit()
        elif int(row[0]) == 1:
            # v1 -> v2 is a pure key-space extension (see SCHEMA_VERSION):
            # every stored row keeps its meaning, so migrate in place.
            db.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION),),
            )
            db.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            version = row[0]
            db.close()
            self._closed = True
            raise StoreSchemaError(
                f"{self.path}: store schema v{version}, expected v{SCHEMA_VERSION}"
            )

    # -- core map -------------------------------------------------------------

    def get(self, workload: str, key: str) -> EvalOutcome | None:
        """The decided outcome for (workload, key), or None."""
        with self._lock:
            row = self._db.execute(
                "SELECT passed, cycles, trap, reason FROM outcomes"
                " WHERE workload = ? AND key = ?",
                (workload, key),
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
            return EvalOutcome(bool(row[0]), row[1], row[2], row[3])

    def put(
        self,
        workload: str,
        key: str,
        outcome: EvalOutcome,
        wall_s: float = 0.0,
        created: float | None = None,
    ) -> None:
        """Record a decided outcome; identical re-puts are no-ops.

        Raises :class:`StoreCollisionError` when the key already maps to
        a *different* outcome (wall time and timestamps are provenance,
        not identity, and do not participate in the comparison).
        ``created`` defaults to now; :meth:`import_jsonl` passes the
        original timestamp through so merged rows keep their provenance.
        """
        with self._lock:
            existing = self._db.execute(
                "SELECT passed, cycles, trap, reason FROM outcomes"
                " WHERE workload = ? AND key = ?",
                (workload, key),
            ).fetchone()
            if existing is not None:
                recorded = EvalOutcome(
                    bool(existing[0]), existing[1], existing[2], existing[3]
                )
                if recorded != outcome:
                    raise StoreCollisionError(
                        f"{workload}/{key[:12]}: recorded {recorded} != new {outcome}"
                    )
                return
            self._db.execute(
                "INSERT INTO outcomes"
                " (workload, key, passed, cycles, trap, reason, wall_s, created)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    workload,
                    key,
                    int(outcome.passed),
                    int(outcome.cycles),
                    outcome.trap,
                    outcome.reason,
                    float(wall_s),
                    time.time() if created is None else float(created),
                ),
            )
            self._db.commit()
            self.puts += 1

    def count(self, workload: str | None = None) -> int:
        with self._lock:
            if workload is None:
                row = self._db.execute("SELECT COUNT(*) FROM outcomes").fetchone()
            else:
                row = self._db.execute(
                    "SELECT COUNT(*) FROM outcomes WHERE workload = ?", (workload,)
                ).fetchone()
            return int(row[0])

    def rows(self, workload: str | None = None) -> Iterator[StoredOutcome]:
        """All rows in canonical (workload, key) order."""
        sql = (
            "SELECT workload, key, passed, cycles, trap, reason, wall_s, created"
            " FROM outcomes"
        )
        params: tuple = ()
        if workload is not None:
            sql += " WHERE workload = ?"
            params = (workload,)
        sql += " ORDER BY workload, key"
        # Materialise under the lock so iteration never interleaves with
        # a sibling thread's writes on the shared connection.
        with self._lock:
            fetched = self._db.execute(sql, params).fetchall()
        for row in fetched:
            yield StoredOutcome(
                row[0],
                row[1],
                EvalOutcome(bool(row[2]), row[3], row[4], row[5]),
                row[6],
                row[7],
            )

    # -- JSONL exchange ---------------------------------------------------------

    def export_jsonl(self, path: str, workload: str | None = None) -> int:
        """Write every row as one canonical JSON line; returns the count."""
        count = 0
        with open(path, "w") as handle:
            for line in self.export_lines(workload):
                handle.write(line + "\n")
                count += 1
        return count

    def export_lines(self, workload: str | None = None) -> Iterator[str]:
        for row in self.rows(workload):
            yield json.dumps(
                {
                    "workload": row.workload,
                    "key": row.key,
                    "passed": row.outcome.passed,
                    "cycles": row.outcome.cycles,
                    "trap": row.outcome.trap,
                    "reason": row.outcome.reason,
                    "wall_s": row.wall_s,
                    "created": row.created,
                },
                sort_keys=True,
            )

    def import_jsonl(self, path: str) -> int:
        """Merge an exported JSONL file; collisions raise, repeats no-op."""
        count = 0
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                self.put(
                    rec["workload"],
                    rec["key"],
                    EvalOutcome(
                        bool(rec["passed"]),
                        int(rec["cycles"]),
                        rec["trap"],
                        rec["reason"],
                    ),
                    wall_s=float(rec.get("wall_s", 0.0)),
                    created=rec.get("created"),
                )
                count += 1
        return count

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._db.commit()
                self._db.close()
                self._closed = True

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore {self.path} rows={self.count()}>"
