"""Operand forms for the virtual ISA.

Four kinds, mirroring what XED reports for SSE code:

* ``Reg``   — a general-purpose 64-bit register;
* ``Xmm``   — a 128-bit XMM register (two 64-bit lanes);
* ``Imm``   — a 64-bit immediate (also used for branch/call targets, which
  are absolute byte offsets into the text section);
* ``Mem``   — a memory reference ``[base + index*scale + disp]``.  Memory
  is **word addressed**: one address names one 64-bit cell.  ``disp`` may
  be a full absolute address (globals are addressed with no base).

Operands are immutable and hashable so instructions can be deduplicated
and used as dictionary keys by the analysis passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import gpr_name, xmm_name

# Kind tags (also the encoding discriminator byte).
KIND_REG = 1
KIND_XMM = 2
KIND_IMM = 3
KIND_MEM = 4

#: Sentinel register index meaning "no register" in a Mem operand encoding.
NO_REG = 0xFF


@dataclass(frozen=True, slots=True)
class Reg:
    """A general-purpose register operand."""

    index: int

    kind = KIND_REG

    def render(self) -> str:
        return f"%{gpr_name(self.index)}"


@dataclass(frozen=True, slots=True)
class Xmm:
    """An XMM register operand."""

    index: int

    kind = KIND_XMM

    def render(self) -> str:
        return f"%{xmm_name(self.index)}"


@dataclass(frozen=True, slots=True)
class Imm:
    """A 64-bit immediate operand (stored as a Python int, signed or raw bits)."""

    value: int

    kind = KIND_IMM

    def render(self) -> str:
        v = self.value
        if -4096 < v < 4096:
            return f"${v}"
        return f"$0x{v & 0xFFFFFFFFFFFFFFFF:x}"


@dataclass(frozen=True, slots=True)
class Mem:
    """A memory operand ``[base + index*scale + disp]`` in word addresses."""

    base: int | None = None
    index: int | None = None
    scale: int = 1
    disp: int = 0

    kind = KIND_MEM

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale}")

    def render(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(f"%{gpr_name(self.base)}")
        if self.index is not None:
            term = f"%{gpr_name(self.index)}"
            if self.scale != 1:
                term += f"*{self.scale}"
            parts.append(term)
        inner = "+".join(parts)
        if self.disp or not inner:
            return f"{self.disp}({inner})" if inner else f"({self.disp})"
        return f"({inner})"


Operand = Reg | Xmm | Imm | Mem

#: Signature letters used in the opcode table.
SIG_LETTER = {KIND_REG: "R", KIND_XMM: "X", KIND_IMM: "I", KIND_MEM: "M"}


def operand_letter(op: Operand) -> str:
    return SIG_LETTER[op.kind]
