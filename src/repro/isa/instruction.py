"""Instruction objects: opcode + operands (+ address and debug info).

An :class:`Instruction` is immutable in its semantic fields; the *address*
is assigned by layout (assembler or rewriter) and recorded separately so
that the same logical instruction can be relocated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

from repro.isa.opcodes import Op, OPCODE_INFO
from repro.isa.operands import Imm, Mem, Operand, operand_letter


class IsaError(Exception):
    """Malformed instruction, operand, or encoding."""


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction.

    ``addr`` is the byte offset of the instruction in its text section
    (``-1`` before layout); ``line`` is the source line from debug info
    (``0`` when unknown).
    """

    opcode: Op
    operands: tuple[Operand, ...] = ()
    addr: int = -1
    line: int = 0

    def __post_init__(self) -> None:
        validate_signature(self.opcode, self.operands)

    @property
    def info(self):
        return OPCODE_INFO[self.opcode]

    def with_addr(self, addr: int) -> "Instruction":
        return _dc_replace(self, addr=addr)

    def with_operands(self, operands: tuple[Operand, ...]) -> "Instruction":
        return _dc_replace(self, operands=operands)

    def with_opcode(self, opcode: Op) -> "Instruction":
        return _dc_replace(self, opcode=opcode)

    # -- queries used by analyses -------------------------------------------

    @property
    def is_candidate(self) -> bool:
        """True if this instruction may be replaced with single precision."""
        return self.info.single_equiv is not None

    def branch_target(self) -> int | None:
        """Absolute byte target of a branch/call, or None."""
        inf = self.info
        if (inf.is_branch or inf.is_call) and self.operands:
            op0 = self.operands[0]
            if isinstance(op0, Imm):
                return op0.value
        return None

    def mem_operands(self) -> tuple[int, ...]:
        return tuple(i for i, o in enumerate(self.operands) if isinstance(o, Mem))

    def render(self) -> str:
        """Instruction text in Intel operand order (destination first),
        e.g. ``addsd %x0, %x1`` meaning ``x0 += x1``."""
        inf = self.info
        if not self.operands:
            return inf.mnemonic
        rendered = [o.render() for o in self.operands]
        return f"{inf.mnemonic} {', '.join(rendered)}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        prefix = f"{self.addr:#08x}: " if self.addr >= 0 else ""
        return prefix + self.render()


#: accepted (opcode, operand classes) pairs.  The ISA is finite and small,
#: so this converges to a few hundred entries; it turns the per-instruction
#: signature scan (every construction — assembly, decode, rewrite — pays
#: it) into one tuple hash.  Keyed by operand *classes* rather than kind
#: letters so the hot-path key is built by C-level ``map(type, ...)``.
_SIG_OK: set = set()


def validate_signature(opcode: Op, operands: tuple[Operand, ...]) -> None:
    """Raise :class:`IsaError` unless *operands* match one allowed signature."""
    key = (opcode, *map(type, operands))
    if key in _SIG_OK:
        return
    letters = tuple(operand_letter(o) for o in operands)
    inf = OPCODE_INFO.get(opcode)
    if inf is None:
        raise IsaError(f"unknown opcode {opcode!r}")
    for sig in inf.sigs:
        if len(sig) != len(letters):
            continue
        if all(letter in allowed for letter, allowed in zip(letters, sig)):
            _SIG_OK.add(key)
            return
    raise IsaError(
        f"{inf.mnemonic}: operand kinds {letters} do not match any signature "
        f"{inf.sigs}"
    )
