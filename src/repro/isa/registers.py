"""Register file definitions for the virtual ISA.

The machine is modeled on x86-64 with SSE2:

* 16 general-purpose 64-bit registers ``R0`` .. ``R15``;
* 16 XMM registers ``X0`` .. ``X15``, each with two 64-bit lanes (so a
  packed-double operation works on two values, exactly the constraint the
  paper cites for 128-bit XMM registers).

Conventions (enforced by the compiler and the instrumentation engine, not
by the hardware):

=========  =================================================================
Register   Role
=========  =================================================================
R0         integer return value / first scratch
R1..R10    integer expression temporaries
R11        compiler scratch (address computation)
R12, R13   **reserved for instrumentation snippets** (the paper's rax/rbx)
R14        frame pointer
R15        stack pointer
X0         floating-point return value / first temporary
X1..X11    floating-point expression temporaries
X12, X13   compiler scratch
X14, X15   **reserved for instrumentation snippets** (memory-operand copies)
=========  =================================================================

Snippets additionally push/pop everything they touch, so the reservation
is belt-and-braces: even code that used R12/R13/X14/X15 would survive
instrumentation.
"""

from __future__ import annotations

NUM_GPRS = 16
NUM_XMMS = 16

# Symbolic names used by the assembler / disassembler.
GPR_NAMES = tuple(f"r{i}" for i in range(NUM_GPRS))
XMM_NAMES = tuple(f"x{i}" for i in range(NUM_XMMS))

GPR_BY_NAME = {name: i for i, name in enumerate(GPR_NAMES)}
XMM_BY_NAME = {name: i for i, name in enumerate(XMM_NAMES)}

# Aliases reflecting the conventions above.
GPR_BY_NAME["sp"] = 15
GPR_BY_NAME["fp"] = 14

RETURN_GPR = 0
RETURN_XMM = 0
FRAME_POINTER = 14
STACK_POINTER = 15

#: Registers that instrumentation snippets may use as scratch.
SNIPPET_GPRS = (12, 13)
SNIPPET_XMMS = (14, 15)

#: Highest GPR / XMM index the compiler may allocate as a temporary.
COMPILER_GPR_TEMPS = tuple(range(1, 11))
COMPILER_XMM_TEMPS = tuple(range(0, 12))
COMPILER_SCRATCH_GPR = 11
COMPILER_SCRATCH_XMM = 12
COMPILER_SCRATCH_XMM2 = 13


def gpr_name(index: int) -> str:
    if not 0 <= index < NUM_GPRS:
        raise ValueError(f"bad GPR index {index}")
    return GPR_NAMES[index]


def xmm_name(index: int) -> str:
    if not 0 <= index < NUM_XMMS:
        raise ValueError(f"bad XMM index {index}")
    return XMM_NAMES[index]
