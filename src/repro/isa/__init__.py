"""The virtual instruction set: opcodes, operands, encoding, decoding.

This is the project's stand-in for x86-64 SSE2 plus the XED decoder.  It
is deliberately shaped like the subset of x86 the paper instruments:
scalar and packed double-precision SSE arithmetic on two-lane XMM
registers, their single-precision equivalents, the integer/flag/branch
machinery the replacement snippets need, and a handful of MPI pseudo-ops
standing in for library calls the tool treats as opaque.
"""

from repro.isa.opcodes import (
    CANDIDATE_OPS,
    MNEMONIC_TO_OP,
    Op,
    OpInfo,
    OPCODE_INFO,
    RED_MAX,
    RED_MIN,
    RED_SUM,
    info,
)
from repro.isa.operands import Imm, Mem, Operand, Reg, Xmm
from repro.isa.instruction import Instruction, IsaError, validate_signature
from repro.isa.encode import (
    decode_instruction,
    encode_instruction,
    encoded_length,
)
from repro.isa import registers

__all__ = [
    "CANDIDATE_OPS",
    "MNEMONIC_TO_OP",
    "Op",
    "OpInfo",
    "OPCODE_INFO",
    "RED_MAX",
    "RED_MIN",
    "RED_SUM",
    "info",
    "Imm",
    "Mem",
    "Operand",
    "Reg",
    "Xmm",
    "Instruction",
    "IsaError",
    "validate_signature",
    "decode_instruction",
    "encode_instruction",
    "encoded_length",
    "registers",
]
