"""Opcode definitions and the metadata table driving every analysis pass.

Each opcode carries an :class:`OpInfo` record describing

* its textual mnemonic and the operand signatures it accepts;
* which operands it reads / writes;
* which operands are consumed / produced as **binary64 values** (``fp_in``
  / ``fp_out``) — these are the slots the instrumentation snippets must
  flag-check, downcast, or upcast;
* its single-precision equivalent opcode, if any.  An instruction whose
  opcode has a ``single_equiv`` is a *replacement candidate* in the sense
  of the paper: the configuration may map it to ``single``;
* whether it is packed (two 64-bit lanes);
* control-flow properties (branch / call / return / terminator);
* its base cycle cost and the byte width of a memory access, for the
  machine model that stands in for the paper's Xeon timings.

The FP semantics deliberately mirror x86 SSE: scalar single-precision
operations write the low 32 bits of the destination lane and *preserve*
the upper bits, which is precisely what lets the ``0x7FF4DEAD`` flag
survive in the high word of a replaced slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum, auto


class Op(IntEnum):
    # --- control / system -------------------------------------------------
    NOP = 1
    HALT = auto()
    JMP = auto()
    JE = auto()
    JNE = auto()
    JL = auto()
    JLE = auto()
    JG = auto()
    JGE = auto()
    JP = auto()
    JNP = auto()
    CALL = auto()
    RET = auto()
    OUTI = auto()
    OUTSD = auto()
    OUTSS = auto()
    RAND = auto()
    # --- integer -----------------------------------------------------------
    MOV = auto()
    LEA = auto()
    ADD = auto()
    SUB = auto()
    IMUL = auto()
    IDIV = auto()
    IREM = auto()
    AND = auto()
    OR = auto()
    XOR = auto()
    NOT = auto()
    NEG = auto()
    SHL = auto()
    SHR = auto()
    SAR = auto()
    CMP = auto()
    TEST = auto()
    PUSH = auto()
    POP = auto()
    PUSHX = auto()
    POPX = auto()
    INC = auto()
    DEC = auto()
    # --- scalar double -----------------------------------------------------
    MOVSD = auto()
    MOVAPD = auto()
    ADDSD = auto()
    SUBSD = auto()
    MULSD = auto()
    DIVSD = auto()
    SQRTSD = auto()
    MINSD = auto()
    MAXSD = auto()
    ABSSD = auto()
    NEGSD = auto()
    UCOMISD = auto()
    CVTSI2SD = auto()
    CVTTSD2SI = auto()
    CVTSD2SS = auto()
    CVTSS2SD = auto()
    SINSD = auto()
    COSSD = auto()
    EXPSD = auto()
    LOGSD = auto()
    MOVQXR = auto()
    MOVQRX = auto()
    # --- packed double -----------------------------------------------------
    ADDPD = auto()
    SUBPD = auto()
    MULPD = auto()
    DIVPD = auto()
    SQRTPD = auto()
    # --- scalar single -----------------------------------------------------
    MOVSS = auto()
    ADDSS = auto()
    SUBSS = auto()
    MULSS = auto()
    DIVSS = auto()
    SQRTSS = auto()
    MINSS = auto()
    MAXSS = auto()
    ABSSS = auto()
    NEGSS = auto()
    UCOMISS = auto()
    CVTSI2SS = auto()
    CVTTSS2SI = auto()
    SINSS = auto()
    COSSS = auto()
    EXPSS = auto()
    LOGSS = auto()
    # --- packed single -----------------------------------------------------
    ADDPS = auto()
    SUBPS = auto()
    MULPS = auto()
    DIVPS = auto()
    SQRTPS = auto()
    # --- lane access ---------------------------------------------------------
    PEXTR = auto()
    PINSR = auto()
    # --- MPI -----------------------------------------------------------------
    MPIRANK = auto()
    MPISIZE = auto()
    ALLRED = auto()
    ALLREDSS = auto()
    ALLREDV = auto()
    ALLREDVSS = auto()
    BARRIER = auto()
    BCASTSD = auto()
    # --- scalar bfloat16 (lattice widths append below; opcode numbers of
    # --- everything above are frozen — existing encodings must not move)
    ADDBF = auto()
    SUBBF = auto()
    MULBF = auto()
    DIVBF = auto()
    SQRTBF = auto()
    MINBF = auto()
    MAXBF = auto()
    ABSBF = auto()
    NEGBF = auto()
    UCOMIBF = auto()
    CVTSI2BF = auto()
    CVTTBF2SI = auto()
    SINBF = auto()
    COSBF = auto()
    EXPBF = auto()
    LOGBF = auto()
    CVTSD2BF = auto()
    CVTBF2SD = auto()
    # --- scalar binary16 ---------------------------------------------------
    ADDHF = auto()
    SUBHF = auto()
    MULHF = auto()
    DIVHF = auto()
    SQRTHF = auto()
    MINHF = auto()
    MAXHF = auto()
    ABSHF = auto()
    NEGHF = auto()
    UCOMIHF = auto()
    CVTSI2HF = auto()
    CVTTHF2SI = auto()
    SINHF = auto()
    COSHF = auto()
    EXPHF = auto()
    LOGHF = auto()
    CVTSD2HF = auto()
    CVTHF2SD = auto()


#: ALLRED / ALLREDSS reduction selectors (immediate operand values).
RED_SUM = 0
RED_MIN = 1
RED_MAX = 2


@dataclass(frozen=True, slots=True)
class OpInfo:
    """Static description of one opcode (see module docstring)."""

    mnemonic: str
    #: Allowed signatures: each alternative is a tuple of per-operand
    #: letter-sets, e.g. ``(("X", "XM"),)`` for ``op xmm, xmm|mem``.
    sigs: tuple[tuple[str, ...], ...]
    reads: tuple[int, ...] = ()
    writes: tuple[int, ...] = ()
    fp_in: tuple[int, ...] = ()
    fp_out: tuple[int, ...] = ()
    single_equiv: "Op | None" = None
    packed: bool = False
    cost: int = 1
    mem_width: int = 8
    is_branch: bool = False
    is_cond_branch: bool = False
    is_call: bool = False
    is_ret: bool = False
    is_terminator: bool = False
    writes_flags: bool = False
    reads_flags: bool = False
    comm: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def is_candidate(self) -> bool:
        """True if instructions with this opcode may be replaced by single."""
        return self.single_equiv is not None


def _ctl(mn, sigs=(), **kw) -> OpInfo:
    return OpInfo(mn, sigs, **kw)


_RI = ("R", "RI")
_XXM = ("X", "XM")

OPCODE_INFO: dict[Op, OpInfo] = {
    # control / system
    Op.NOP: _ctl("nop", ((),)),
    Op.HALT: _ctl("halt", ((),), is_terminator=True),
    Op.JMP: _ctl("jmp", (("I",),), is_branch=True, is_terminator=True),
    Op.JE: _ctl("je", (("I",),), is_branch=True, is_cond_branch=True, reads_flags=True),
    Op.JNE: _ctl("jne", (("I",),), is_branch=True, is_cond_branch=True, reads_flags=True),
    Op.JL: _ctl("jl", (("I",),), is_branch=True, is_cond_branch=True, reads_flags=True),
    Op.JLE: _ctl("jle", (("I",),), is_branch=True, is_cond_branch=True, reads_flags=True),
    Op.JG: _ctl("jg", (("I",),), is_branch=True, is_cond_branch=True, reads_flags=True),
    Op.JGE: _ctl("jge", (("I",),), is_branch=True, is_cond_branch=True, reads_flags=True),
    Op.JP: _ctl("jp", (("I",),), is_branch=True, is_cond_branch=True, reads_flags=True),
    Op.JNP: _ctl("jnp", (("I",),), is_branch=True, is_cond_branch=True, reads_flags=True),
    Op.CALL: _ctl("call", (("I",),), is_call=True, cost=2),
    Op.RET: _ctl("ret", ((),), is_ret=True, is_terminator=True, cost=2),
    Op.OUTI: _ctl("outi", (("R",),), reads=(0,)),
    Op.OUTSD: _ctl("outsd", (("X",),), reads=(0,)),
    Op.OUTSS: _ctl("outss", (("X",),), reads=(0,)),
    Op.RAND: _ctl("rand", (("R",),), writes=(0,), cost=4),
    # integer
    Op.MOV: _ctl("mov", (("R", "RIM"), ("M", "RI"))),
    Op.LEA: _ctl("lea", (("R", "M"),), writes=(0,)),
    Op.ADD: _ctl("add", (_RI,), reads=(0, 1), writes=(0,)),
    Op.SUB: _ctl("sub", (_RI,), reads=(0, 1), writes=(0,)),
    Op.IMUL: _ctl("imul", (_RI,), reads=(0, 1), writes=(0,), cost=3),
    Op.IDIV: _ctl("idiv", (_RI,), reads=(0, 1), writes=(0,), cost=20),
    Op.IREM: _ctl("irem", (_RI,), reads=(0, 1), writes=(0,), cost=20),
    Op.AND: _ctl("and", (_RI,), reads=(0, 1), writes=(0,)),
    Op.OR: _ctl("or", (_RI,), reads=(0, 1), writes=(0,)),
    Op.XOR: _ctl("xor", (_RI,), reads=(0, 1), writes=(0,)),
    Op.NOT: _ctl("not", (("R",),), reads=(0,), writes=(0,)),
    Op.NEG: _ctl("neg", (("R",),), reads=(0,), writes=(0,)),
    Op.SHL: _ctl("shl", (_RI,), reads=(0, 1), writes=(0,)),
    Op.SHR: _ctl("shr", (_RI,), reads=(0, 1), writes=(0,)),
    Op.SAR: _ctl("sar", (_RI,), reads=(0, 1), writes=(0,)),
    Op.CMP: _ctl("cmp", (_RI,), reads=(0, 1), writes_flags=True),
    Op.TEST: _ctl("test", (_RI,), reads=(0, 1), writes_flags=True),
    Op.PUSH: _ctl("push", (("RI",),), reads=(0,), cost=2),
    Op.POP: _ctl("pop", (("R",),), writes=(0,), cost=2),
    Op.PUSHX: _ctl("pushx", (("X",),), reads=(0,), cost=4),
    Op.POPX: _ctl("popx", (("X",),), writes=(0,), cost=4),
    Op.INC: _ctl("inc", (("R",),), reads=(0,), writes=(0,)),
    Op.DEC: _ctl("dec", (("R",),), reads=(0,), writes=(0,)),
    # scalar double
    Op.MOVSD: _ctl("movsd", (("X", "XM"), ("M", "X")), reads=(1,), writes=(0,)),
    Op.MOVAPD: _ctl(
        "movapd", (("X", "XM"), ("M", "X")), reads=(1,), writes=(0,), mem_width=16
    ),
    Op.ADDSD: _ctl(
        "addsd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.ADDSS, cost=4,
    ),
    Op.SUBSD: _ctl(
        "subsd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.SUBSS, cost=4,
    ),
    Op.MULSD: _ctl(
        "mulsd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.MULSS, cost=4,
    ),
    Op.DIVSD: _ctl(
        "divsd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.DIVSS, cost=20,
    ),
    Op.SQRTSD: _ctl(
        "sqrtsd", (_XXM,), reads=(1,), writes=(0,), fp_in=(1,), fp_out=(0,),
        single_equiv=Op.SQRTSS, cost=20,
    ),
    Op.MINSD: _ctl(
        "minsd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.MINSS, cost=4,
    ),
    Op.MAXSD: _ctl(
        "maxsd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.MAXSS, cost=4,
    ),
    Op.ABSSD: _ctl(
        "abssd", (("X", "X"),), reads=(1,), writes=(0,), fp_in=(1,), fp_out=(0,),
        single_equiv=Op.ABSSS, cost=1,
    ),
    Op.NEGSD: _ctl(
        "negsd", (("X", "X"),), reads=(1,), writes=(0,), fp_in=(1,), fp_out=(0,),
        single_equiv=Op.NEGSS, cost=1,
    ),
    Op.UCOMISD: _ctl(
        "ucomisd", (_XXM,), reads=(0, 1), fp_in=(0, 1), writes_flags=True,
        single_equiv=Op.UCOMISS, cost=2,
    ),
    Op.CVTSI2SD: _ctl(
        "cvtsi2sd", (("X", "R"),), reads=(1,), writes=(0,), fp_out=(0,),
        single_equiv=Op.CVTSI2SS, cost=4,
    ),
    Op.CVTTSD2SI: _ctl(
        "cvttsd2si", (("R", "X"),), reads=(1,), writes=(0,), fp_in=(1,),
        single_equiv=Op.CVTTSS2SI, cost=4,
    ),
    Op.CVTSD2SS: _ctl("cvtsd2ss", (("X", "X"),), reads=(1,), writes=(0,), cost=2),
    Op.CVTSS2SD: _ctl("cvtss2sd", (("X", "X"),), reads=(1,), writes=(0,), cost=2),
    Op.SINSD: _ctl(
        "sinsd", (("X", "X"),), reads=(1,), writes=(0,), fp_in=(1,), fp_out=(0,),
        single_equiv=Op.SINSS, cost=40,
    ),
    Op.COSSD: _ctl(
        "cossd", (("X", "X"),), reads=(1,), writes=(0,), fp_in=(1,), fp_out=(0,),
        single_equiv=Op.COSSS, cost=40,
    ),
    Op.EXPSD: _ctl(
        "expsd", (("X", "X"),), reads=(1,), writes=(0,), fp_in=(1,), fp_out=(0,),
        single_equiv=Op.EXPSS, cost=40,
    ),
    Op.LOGSD: _ctl(
        "logsd", (("X", "X"),), reads=(1,), writes=(0,), fp_in=(1,), fp_out=(0,),
        single_equiv=Op.LOGSS, cost=40,
    ),
    Op.MOVQXR: _ctl("movqxr", (("X", "R"),), reads=(1,), writes=(0,)),
    Op.MOVQRX: _ctl("movqrx", (("R", "X"),), reads=(1,), writes=(0,)),
    # packed double
    Op.ADDPD: _ctl(
        "addpd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.ADDPS, packed=True, cost=6, mem_width=16,
    ),
    Op.SUBPD: _ctl(
        "subpd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.SUBPS, packed=True, cost=6, mem_width=16,
    ),
    Op.MULPD: _ctl(
        "mulpd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.MULPS, packed=True, cost=6, mem_width=16,
    ),
    Op.DIVPD: _ctl(
        "divpd", (_XXM,), reads=(0, 1), writes=(0,), fp_in=(0, 1), fp_out=(0,),
        single_equiv=Op.DIVPS, packed=True, cost=36, mem_width=16,
    ),
    Op.SQRTPD: _ctl(
        "sqrtpd", (_XXM,), reads=(1,), writes=(0,), fp_in=(1,), fp_out=(0,),
        single_equiv=Op.SQRTPS, packed=True, cost=36, mem_width=16,
    ),
    # scalar single
    Op.MOVSS: _ctl(
        "movss", (("X", "XM"), ("M", "X")), reads=(1,), writes=(0,), mem_width=4
    ),
    Op.ADDSS: _ctl("addss", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=4),
    Op.SUBSS: _ctl("subss", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=4),
    Op.MULSS: _ctl("mulss", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=4),
    Op.DIVSS: _ctl("divss", (_XXM,), reads=(0, 1), writes=(0,), cost=10, mem_width=4),
    Op.SQRTSS: _ctl("sqrtss", (_XXM,), reads=(1,), writes=(0,), cost=10, mem_width=4),
    Op.MINSS: _ctl("minss", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=4),
    Op.MAXSS: _ctl("maxss", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=4),
    Op.ABSSS: _ctl("absss", (("X", "X"),), reads=(1,), writes=(0,), cost=1),
    Op.NEGSS: _ctl("negss", (("X", "X"),), reads=(1,), writes=(0,), cost=1),
    Op.UCOMISS: _ctl(
        "ucomiss", (_XXM,), reads=(0, 1), writes_flags=True, cost=2, mem_width=4
    ),
    Op.CVTSI2SS: _ctl("cvtsi2ss", (("X", "R"),), reads=(1,), writes=(0,), cost=2),
    Op.CVTTSS2SI: _ctl("cvttss2si", (("R", "X"),), reads=(1,), writes=(0,), cost=2),
    Op.SINSS: _ctl("sinss", (("X", "X"),), reads=(1,), writes=(0,), cost=20),
    Op.COSSS: _ctl("cosss", (("X", "X"),), reads=(1,), writes=(0,), cost=20),
    Op.EXPSS: _ctl("expss", (("X", "X"),), reads=(1,), writes=(0,), cost=20),
    Op.LOGSS: _ctl("logss", (("X", "X"),), reads=(1,), writes=(0,), cost=20),
    # packed single (each 64-bit lane = two binary32 elements, like x86)
    Op.ADDPS: _ctl("addps", (_XXM,), reads=(0, 1), writes=(0,), packed=True, cost=3, mem_width=16),
    Op.SUBPS: _ctl("subps", (_XXM,), reads=(0, 1), writes=(0,), packed=True, cost=3, mem_width=16),
    Op.MULPS: _ctl("mulps", (_XXM,), reads=(0, 1), writes=(0,), packed=True, cost=3, mem_width=16),
    Op.DIVPS: _ctl("divps", (_XXM,), reads=(0, 1), writes=(0,), packed=True, cost=20, mem_width=16),
    Op.SQRTPS: _ctl("sqrtps", (_XXM,), reads=(1,), writes=(0,), packed=True, cost=20, mem_width=16),
    # lane access
    Op.PEXTR: _ctl("pextr", (("R", "X", "I"),), reads=(1, 2), writes=(0,)),
    Op.PINSR: _ctl("pinsr", (("X", "R", "I"),), reads=(0, 1, 2), writes=(0,)),
    # MPI
    Op.MPIRANK: _ctl("mpirank", (("R",),), writes=(0,)),
    Op.MPISIZE: _ctl("mpisize", (("R",),), writes=(0,)),
    Op.ALLRED: _ctl("allred", (("X", "I"),), reads=(0, 1), writes=(0,), comm=True, cost=8),
    Op.ALLREDSS: _ctl("allredss", (("X", "I"),), reads=(0, 1), writes=(0,), comm=True, cost=8),
    Op.ALLREDV: _ctl("allredv", (("M", "I", "R"),), reads=(0, 1, 2), writes=(0,), comm=True, cost=16),
    Op.ALLREDVSS: _ctl("allredvss", (("M", "I", "R"),), reads=(0, 1, 2), writes=(0,), comm=True, cost=16),
    Op.BARRIER: _ctl("barrier", ((),), comm=True, cost=4),
    Op.BCASTSD: _ctl("bcastsd", (("X", "I"),), reads=(0, 1), writes=(0,), comm=True, cost=8),
    # scalar bfloat16 (lattice rung below single; same slot discipline as
    # the SS family — write the low bits, preserve the rest of the lane)
    Op.ADDBF: _ctl("addbf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.SUBBF: _ctl("subbf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.MULBF: _ctl("mulbf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.DIVBF: _ctl("divbf", (_XXM,), reads=(0, 1), writes=(0,), cost=8, mem_width=2),
    Op.SQRTBF: _ctl("sqrtbf", (_XXM,), reads=(1,), writes=(0,), cost=8, mem_width=2),
    Op.MINBF: _ctl("minbf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.MAXBF: _ctl("maxbf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.ABSBF: _ctl("absbf", (("X", "X"),), reads=(1,), writes=(0,), cost=1),
    Op.NEGBF: _ctl("negbf", (("X", "X"),), reads=(1,), writes=(0,), cost=1),
    Op.UCOMIBF: _ctl(
        "ucomibf", (_XXM,), reads=(0, 1), writes_flags=True, cost=2, mem_width=2
    ),
    Op.CVTSI2BF: _ctl("cvtsi2bf", (("X", "R"),), reads=(1,), writes=(0,), cost=2),
    Op.CVTTBF2SI: _ctl("cvttbf2si", (("R", "X"),), reads=(1,), writes=(0,), cost=2),
    Op.SINBF: _ctl("sinbf", (("X", "X"),), reads=(1,), writes=(0,), cost=16),
    Op.COSBF: _ctl("cosbf", (("X", "X"),), reads=(1,), writes=(0,), cost=16),
    Op.EXPBF: _ctl("expbf", (("X", "X"),), reads=(1,), writes=(0,), cost=16),
    Op.LOGBF: _ctl("logbf", (("X", "X"),), reads=(1,), writes=(0,), cost=16),
    Op.CVTSD2BF: _ctl("cvtsd2bf", (("X", "X"),), reads=(1,), writes=(0,), cost=2),
    Op.CVTBF2SD: _ctl("cvtbf2sd", (("X", "X"),), reads=(1,), writes=(0,), cost=2),
    # scalar binary16
    Op.ADDHF: _ctl("addhf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.SUBHF: _ctl("subhf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.MULHF: _ctl("mulhf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.DIVHF: _ctl("divhf", (_XXM,), reads=(0, 1), writes=(0,), cost=8, mem_width=2),
    Op.SQRTHF: _ctl("sqrthf", (_XXM,), reads=(1,), writes=(0,), cost=8, mem_width=2),
    Op.MINHF: _ctl("minhf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.MAXHF: _ctl("maxhf", (_XXM,), reads=(0, 1), writes=(0,), cost=2, mem_width=2),
    Op.ABSHF: _ctl("abshf", (("X", "X"),), reads=(1,), writes=(0,), cost=1),
    Op.NEGHF: _ctl("neghf", (("X", "X"),), reads=(1,), writes=(0,), cost=1),
    Op.UCOMIHF: _ctl(
        "ucomihf", (_XXM,), reads=(0, 1), writes_flags=True, cost=2, mem_width=2
    ),
    Op.CVTSI2HF: _ctl("cvtsi2hf", (("X", "R"),), reads=(1,), writes=(0,), cost=2),
    Op.CVTTHF2SI: _ctl("cvtthf2si", (("R", "X"),), reads=(1,), writes=(0,), cost=2),
    Op.SINHF: _ctl("sinhf", (("X", "X"),), reads=(1,), writes=(0,), cost=16),
    Op.COSHF: _ctl("coshf", (("X", "X"),), reads=(1,), writes=(0,), cost=16),
    Op.EXPHF: _ctl("exphf", (("X", "X"),), reads=(1,), writes=(0,), cost=16),
    Op.LOGHF: _ctl("loghf", (("X", "X"),), reads=(1,), writes=(0,), cost=16),
    Op.CVTSD2HF: _ctl("cvtsd2hf", (("X", "X"),), reads=(1,), writes=(0,), cost=2),
    Op.CVTHF2SD: _ctl("cvthf2sd", (("X", "X"),), reads=(1,), writes=(0,), cost=2),
}

MNEMONIC_TO_OP = {info.mnemonic: op for op, info in OPCODE_INFO.items()}

#: Opcodes whose instructions are replacement candidates.
CANDIDATE_OPS = frozenset(op for op, info in OPCODE_INFO.items() if info.is_candidate)

#: Scalar-double op -> its bfloat16 / binary16 equivalent.  Parallels
#: ``single_equiv`` for the lattice rungs below f32; packed ops have no
#: entry (packed sites floor at f32 — there are no packed narrow ops).
BF16_EQUIV = {
    Op.ADDSD: Op.ADDBF,
    Op.SUBSD: Op.SUBBF,
    Op.MULSD: Op.MULBF,
    Op.DIVSD: Op.DIVBF,
    Op.SQRTSD: Op.SQRTBF,
    Op.MINSD: Op.MINBF,
    Op.MAXSD: Op.MAXBF,
    Op.ABSSD: Op.ABSBF,
    Op.NEGSD: Op.NEGBF,
    Op.UCOMISD: Op.UCOMIBF,
    Op.CVTSI2SD: Op.CVTSI2BF,
    Op.CVTTSD2SI: Op.CVTTBF2SI,
    Op.SINSD: Op.SINBF,
    Op.COSSD: Op.COSBF,
    Op.EXPSD: Op.EXPBF,
    Op.LOGSD: Op.LOGBF,
}

HALF_EQUIV = {
    Op.ADDSD: Op.ADDHF,
    Op.SUBSD: Op.SUBHF,
    Op.MULSD: Op.MULHF,
    Op.DIVSD: Op.DIVHF,
    Op.SQRTSD: Op.SQRTHF,
    Op.MINSD: Op.MINHF,
    Op.MAXSD: Op.MAXHF,
    Op.ABSSD: Op.ABSHF,
    Op.NEGSD: Op.NEGHF,
    Op.UCOMISD: Op.UCOMIHF,
    Op.CVTSI2SD: Op.CVTSI2HF,
    Op.CVTTSD2SI: Op.CVTTHF2SI,
    Op.SINSD: Op.SINHF,
    Op.COSSD: Op.COSHF,
    Op.EXPSD: Op.EXPHF,
    Op.LOGSD: Op.LOGHF,
}

#: Lattice width name -> (narrow equivalents, downcast op, upcast op).
#: f32 reuses the original single_equiv mapping and cvt pair.
NARROW_FAMILIES = {
    "f32": (
        {op: inf.single_equiv for op, inf in OPCODE_INFO.items() if inf.single_equiv},
        Op.CVTSD2SS,
        Op.CVTSS2SD,
    ),
    "bf16": (BF16_EQUIV, Op.CVTSD2BF, Op.CVTBF2SD),
    "f16": (HALF_EQUIV, Op.CVTSD2HF, Op.CVTHF2SD),
}


def info(op: Op) -> OpInfo:
    """Metadata record for *op*."""
    return OPCODE_INFO[op]


def _check_table() -> None:
    missing = [op for op in Op if op not in OPCODE_INFO]
    if missing:
        raise AssertionError(f"opcodes missing from OPCODE_INFO: {missing}")


_check_table()
