"""Byte encoding of instructions (the "machine code" of the virtual ISA).

Layout of one instruction::

    +----------+---------+----------------------+
    | opcode   | n_opnds | operand encodings ...|
    | u16 LE   | u8      | variable             |
    +----------+---------+----------------------+

Operand encodings (first byte is the kind tag):

* ``Reg``:  ``01 idx``                                     (2 bytes)
* ``Xmm``:  ``02 idx``                                     (2 bytes)
* ``Imm``:  ``03`` + 8-byte little-endian two's complement (9 bytes)
* ``Mem``:  ``04 base index scale`` + 8-byte LE disp       (12 bytes)

``base``/``index`` use ``0xFF`` for "absent".  Instructions are variable
length, like x86; the disassembler (:mod:`repro.isa.decode`) is the
project's stand-in for XED.
"""

from __future__ import annotations

import struct

from repro.isa.instruction import Instruction, IsaError
from repro.isa.opcodes import Op
from repro.isa.operands import (
    KIND_IMM,
    KIND_MEM,
    KIND_REG,
    KIND_XMM,
    Imm,
    Mem,
    NO_REG,
    Reg,
    Xmm,
)

_U16 = struct.Struct("<H")
_I64 = struct.Struct("<q")

_BITS64 = 0xFFFFFFFFFFFFFFFF


def _imm_to_signed(value: int) -> int:
    """Normalize a 64-bit raw pattern or signed int to signed i64."""
    value &= _BITS64
    return value - (1 << 64) if value >= (1 << 63) else value


def encode_operand(op) -> bytes:
    kind = op.kind
    if kind == KIND_REG or kind == KIND_XMM:
        return bytes((kind, op.index))
    if kind == KIND_IMM:
        return bytes((kind,)) + _I64.pack(_imm_to_signed(op.value))
    if kind == KIND_MEM:
        base = NO_REG if op.base is None else op.base
        index = NO_REG if op.index is None else op.index
        return bytes((kind, base, index, op.scale)) + _I64.pack(
            _imm_to_signed(op.disp)
        )
    raise IsaError(f"cannot encode operand {op!r}")


def encode_body(opcode: Op, operands: tuple) -> bytes:
    """Encode an (opcode, operands) pair without an Instruction wrapper.

    The encoding is independent of the instruction's address, so callers
    that know their operands are final (no unresolved labels) can encode
    before layout and reuse the bytes.
    """
    parts = [_U16.pack(int(opcode)), bytes((len(operands),))]
    parts.extend(encode_operand(o) for o in operands)
    return b"".join(parts)


def encode_instruction(instr: Instruction) -> bytes:
    return encode_body(instr.opcode, instr.operands)


def encoded_length(instr: Instruction) -> int:
    """Length in bytes of the encoding of *instr* (without encoding it twice)."""
    n = 3
    for o in instr.operands:
        kind = o.kind
        if kind in (KIND_REG, KIND_XMM):
            n += 2
        elif kind == KIND_IMM:
            n += 9
        else:
            n += 12
    return n


def decode_operand(buf: bytes, offset: int):
    """Decode one operand; returns (operand, new_offset)."""
    kind = buf[offset]
    if kind == KIND_REG:
        return Reg(buf[offset + 1]), offset + 2
    if kind == KIND_XMM:
        return Xmm(buf[offset + 1]), offset + 2
    if kind == KIND_IMM:
        (value,) = _I64.unpack_from(buf, offset + 1)
        return Imm(value), offset + 9
    if kind == KIND_MEM:
        base = buf[offset + 1]
        index = buf[offset + 2]
        scale = buf[offset + 3]
        (disp,) = _I64.unpack_from(buf, offset + 4)
        return (
            Mem(
                base=None if base == NO_REG else base,
                index=None if index == NO_REG else index,
                scale=scale,
                disp=disp,
            ),
            offset + 12,
        )
    raise IsaError(f"bad operand kind byte {kind:#x} at offset {offset}")


def decode_instruction(buf: bytes, offset: int) -> tuple[Instruction, int]:
    """Decode the instruction at *offset*; returns (instruction, size)."""
    if offset + 3 > len(buf):
        raise IsaError(f"truncated instruction at offset {offset}")
    (raw_op,) = _U16.unpack_from(buf, offset)
    try:
        opcode = Op(raw_op)
    except ValueError as exc:
        raise IsaError(f"unknown opcode {raw_op:#x} at offset {offset}") from exc
    count = buf[offset + 2]
    pos = offset + 3
    operands = []
    for _ in range(count):
        operand, pos = decode_operand(buf, pos)
        operands.append(operand)
    instr = Instruction(opcode, tuple(operands), addr=offset)
    return instr, pos - offset
