"""The mini-language compiler.

The paper analyzes Fortran/C programs compiled to x86; this package is
the equivalent front end for the virtual ISA.  It compiles a small
statically-typed language ("MH") with ``i64`` / ``f64`` / ``f32``
scalars, global arrays, functions, control flow, MPI intrinsics and
transcendentals into :class:`~repro.binary.model.Program` executables
with full function/block structure and source-line debug info.

Precision genericity: the ``real`` type resolves to ``f64`` or ``f32``
at compile time (like Fortran's ``-r8``/``-r4``), which is how we build
the "manually converted" single-precision versions of every workload —
the paper did this with a source translation script; we do it with a
compiler flag.

Transcendental handling (paper Section 2.5): with
``transcendentals="instruction"`` the compiler emits dedicated
``sinsd``-style instructions (the tool's special handling, making the
call replaceable as a unit); with ``"library"`` it emits calls to a
compiled math library whose internals are ordinary instructions (the
situation the paper describes where lookup/bitwise code inside ``libm``
resists replacement).
"""

from repro.compiler.driver import CompileOptions, compile_program, compile_source
from repro.compiler.errors import CompileError

__all__ = [
    "CompileOptions",
    "compile_program",
    "compile_source",
    "CompileError",
]
