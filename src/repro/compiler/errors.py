"""Compiler diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """Lexing, parsing, type, or code-generation error with location."""

    def __init__(self, message: str, line: int = 0, module: str = "") -> None:
        self.line = line
        self.module = module
        where = ""
        if module:
            where = f"{module}:"
        if line:
            where += f"{line}: "
        elif where:
            where += " "
        super().__init__(where + message)
