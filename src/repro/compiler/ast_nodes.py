"""AST node definitions for the MH mini-language.

Types are plain strings — ``"i64"``, ``"f64"``, ``"f32"`` — plus array
reference types ``("arr", elem)`` used for parameters and array-valued
expressions.  The source-level ``real`` keyword is resolved to ``f64`` or
``f32`` by the parser according to the compile options.
"""

from __future__ import annotations

from dataclasses import dataclass, field

Type = str | tuple  # "i64" | "f64" | "f32" | ("arr", elem)


def is_fp(t: Type) -> bool:
    return t in ("f64", "f32")


def is_arr(t: Type) -> bool:
    return isinstance(t, tuple) and t[0] == "arr"


def type_name(t: Type) -> str:
    if is_arr(t):
        return f"{t[1]}[]"
    return str(t)


# --- expressions -----------------------------------------------------------


@dataclass(slots=True)
class IntLit:
    value: int
    line: int


@dataclass(slots=True)
class FloatLit:
    value: float
    line: int


@dataclass(slots=True)
class NameRef:
    name: str
    line: int


@dataclass(slots=True)
class Index:
    base: object  # expression of array type
    index: object
    line: int


@dataclass(slots=True)
class Unary:
    op: str  # "-" | "not"
    operand: object
    line: int


@dataclass(slots=True)
class Binary:
    op: str  # + - * / % << >> & | ^  == != < <= > >=  and or
    left: object
    right: object
    line: int


@dataclass(slots=True)
class Call:
    name: str
    args: list
    line: int


@dataclass(slots=True)
class Cast:
    target: Type
    operand: object
    line: int


# --- statements --------------------------------------------------------------


@dataclass(slots=True)
class VarDecl:
    name: str
    type: Type
    init: object | None
    line: int


@dataclass(slots=True)
class Assign:
    target: object  # NameRef or Index
    value: object
    line: int


@dataclass(slots=True)
class If:
    cond: object
    then_body: list
    else_body: list
    line: int


@dataclass(slots=True)
class While:
    cond: object
    body: list
    line: int


@dataclass(slots=True)
class For:
    var: str
    lo: object
    hi: object
    body: list
    line: int


@dataclass(slots=True)
class Return:
    value: object | None
    line: int


@dataclass(slots=True)
class Out:
    value: object
    line: int


@dataclass(slots=True)
class Break:
    line: int


@dataclass(slots=True)
class Continue:
    line: int


@dataclass(slots=True)
class ExprStmt:
    expr: object
    line: int


# --- top level -----------------------------------------------------------------


@dataclass(slots=True)
class Param:
    name: str
    type: Type


@dataclass(slots=True)
class FuncDef:
    name: str
    params: list
    ret: Type | None
    body: list
    line: int
    module: str = ""


@dataclass(slots=True)
class GlobalVar:
    name: str
    type: Type
    size: int  # 1 for scalars, element count for arrays
    init: list = field(default_factory=list)  # constant cell values (bit patterns)
    line: int = 0
    module: str = ""


@dataclass(slots=True)
class ModuleAst:
    name: str
    consts: dict
    globals: list
    functions: list
