"""Compiler driver: sources -> linked Program.

``compile_program`` accepts a list of module sources (each may carry its
own ``module name;`` header) and produces one executable.  Multi-module
programs matter here: the paper's automatic search descends module ->
function -> basic block -> instruction, so workloads are deliberately
split across modules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binary.model import Program
from repro.compiler.codegen import CodeGen
from repro.compiler.errors import CompileError
from repro.compiler.parser import parse_source


@dataclass(frozen=True, slots=True)
class CompileOptions:
    """Compilation switches.

    real_type:
        What the source-level ``real`` type means: ``"f64"`` builds the
        original double-precision program, ``"f32"`` the "manually
        converted" single-precision one (the paper's Fortran translation
        script, as a compiler flag).
    transcendentals:
        ``"instruction"`` emits dedicated transcendental opcodes (the
        tool's special handling of libm, Section 2.5); ``"library"``
        emits calls to ``mh_sin``-style functions that must be linked in.
    entry:
        Name of the program's entry function.
    """

    name: str = "a.out"
    real_type: str = "f64"
    transcendentals: str = "instruction"
    entry: str = "main"

    def __post_init__(self) -> None:
        if self.real_type not in ("f64", "f32"):
            raise CompileError(f"bad real_type {self.real_type!r}")
        if self.transcendentals not in ("instruction", "library"):
            raise CompileError(f"bad transcendentals {self.transcendentals!r}")


def compile_program(
    sources: list[str],
    options: CompileOptions | None = None,
) -> Program:
    """Compile and link *sources* (one string per module)."""
    options = options or CompileOptions()
    modules = []
    seen = set()
    for index, source in enumerate(sources):
        default_name = "main" if index == 0 else f"mod{index}"
        mod = parse_source(source, default_name, real_type=options.real_type)
        if mod.name in seen:
            raise CompileError(f"duplicate module name {mod.name!r}")
        seen.add(mod.name)
        modules.append(mod)
    return CodeGen(modules, options).generate()


def compile_source(source: str, options: CompileOptions | None = None) -> Program:
    """Compile a single-module program."""
    return compile_program([source], options)
