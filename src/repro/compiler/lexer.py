"""Tokenizer for the MH mini-language."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.errors import CompileError

KEYWORDS = {
    "module", "const", "var", "fn", "return", "if", "else", "while", "for",
    "in", "break", "continue", "and", "or", "not", "out",
    "i64", "f64", "f32", "real",
}

# Multi-character operators first (longest match wins).
_OPERATORS = [
    "<<", ">>", "==", "!=", "<=", ">=", "->", "..",
    "+", "-", "*", "/", "%", "&", "|", "^",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ":", ";",
]


@dataclass(frozen=True, slots=True)
class Token:
    kind: str       # "ident" | "int" | "float" | "op" | "kw" | "eof"
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.value!r},l{self.line})"


def tokenize(source: str, module: str = "") -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            tokens.append(Token("kw" if word in KEYWORDS else "ident", word, line))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source[j] == "0" and j + 1 < n and source[j + 1] in "xX":
                j += 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                tokens.append(Token("int", source[i:j], line))
                i = j
                continue
            while j < n and source[j].isdigit():
                j += 1
            # Careful: ".." is a range operator, not part of a float.
            if j < n and source[j] == "." and not (j + 1 < n and source[j + 1] == "."):
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            tokens.append(Token("float" if is_float else "int", source[i:j], line))
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line, module)
    tokens.append(Token("eof", "", line))
    return tokens
