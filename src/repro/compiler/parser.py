"""Recursive-descent parser for the MH mini-language.

Grammar sketch::

    module      := ["module" IDENT ";"] toplevel*
    toplevel    := constdecl | globaldecl | funcdef
    constdecl   := "const" IDENT ":" scalartype "=" constexpr ";"
    globaldecl  := "var" IDENT ":" type ["=" init] ";"
    funcdef     := "fn" IDENT "(" params ")" ["->" scalartype] block
    type        := scalartype | scalartype "[" constexpr "]"
    paramtype   := scalartype | scalartype "[" "]"
    block       := "{" statement* "}"
    statement   := vardecl | assign | if | while | for | return | out |
                   break | continue | exprstmt
    for         := "for" IDENT "in" expr ".." expr block

Expression precedence (low to high): ``or``, ``and``, ``not``,
comparisons, ``| ^``, ``&``, ``<< >>``, ``+ -``, ``* / %``, unary ``-``,
postfix call/index.
"""

from __future__ import annotations

from repro.compiler.ast_nodes import (
    Assign,
    Binary,
    Break,
    Call,
    Cast,
    Continue,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    GlobalVar,
    If,
    Index,
    IntLit,
    ModuleAst,
    NameRef,
    Out,
    Param,
    Return,
    Unary,
    VarDecl,
    While,
)
from repro.compiler.errors import CompileError
from repro.compiler.lexer import Token, tokenize
from repro.fpbits.ieee import double_to_bits, single_to_bits

_SCALAR_TYPES = ("i64", "f64", "f32", "real")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


class Parser:
    def __init__(self, source: str, module: str, real_type: str = "f64") -> None:
        if real_type not in ("f64", "f32"):
            raise CompileError(f"bad real type {real_type!r}")
        self.tokens = tokenize(source, module)
        self.pos = 0
        self.module = module
        self.real_type = real_type
        self.consts: dict[str, tuple] = {}  # name -> (type, value)

    # -- token helpers -----------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def _error(self, message: str, line: int | None = None) -> CompileError:
        return CompileError(message, line if line is not None else self.cur.line, self.module)

    def _expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.cur
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value or kind
            raise self._error(f"expected {want!r}, got {tok.value!r}")
        return self._advance()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self.cur
        if tok.kind == kind and (value is None or tok.value == value):
            return self._advance()
        return None

    # -- types ---------------------------------------------------------------------

    def _scalar_type(self) -> str:
        tok = self.cur
        if tok.kind == "kw" and tok.value in _SCALAR_TYPES:
            self._advance()
            return self.real_type if tok.value == "real" else tok.value
        raise self._error(f"expected a type, got {tok.value!r}")

    # -- module ----------------------------------------------------------------------

    def parse_module(self) -> ModuleAst:
        name = self.module
        if self._accept("kw", "module"):
            name = self._expect("ident").value
            self._expect("op", ";")
        consts: dict[str, tuple] = self.consts
        globals_: list[GlobalVar] = []
        functions: list[FuncDef] = []
        while self.cur.kind != "eof":
            if self.cur.kind == "kw" and self.cur.value == "const":
                self._parse_const()
            elif self.cur.kind == "kw" and self.cur.value == "var":
                globals_.append(self._parse_global())
            elif self.cur.kind == "kw" and self.cur.value == "fn":
                functions.append(self._parse_func(name))
            else:
                raise self._error(f"unexpected {self.cur.value!r} at top level")
        return ModuleAst(name, dict(consts), globals_, functions)

    def _parse_const(self) -> None:
        line = self._expect("kw", "const").line
        name = self._expect("ident").value
        self._expect("op", ":")
        ctype = self._scalar_type()
        self._expect("op", "=")
        expr = self._expression()
        self._expect("op", ";")
        value = self._const_eval(expr)
        if ctype == "i64":
            if not isinstance(value, int):
                raise self._error(f"const {name} needs an integer value", line)
        else:
            value = float(value)
        if name in self.consts:
            raise self._error(f"duplicate const {name!r}", line)
        self.consts[name] = (ctype, value)

    def _parse_global(self) -> GlobalVar:
        line = self._expect("kw", "var").line
        name = self._expect("ident").value
        self._expect("op", ":")
        etype = self._scalar_type()
        size = 1
        is_array = False
        if self._accept("op", "["):
            size_expr = self._expression()
            self._expect("op", "]")
            size = self._const_eval(size_expr)
            if not isinstance(size, int) or size <= 0:
                raise self._error(f"array {name!r} needs a positive constant size", line)
            is_array = True
        init_cells: list[int] = []
        if self._accept("op", "="):
            if is_array:
                self._expect("op", "[")
                while True:
                    init_cells.append(self._const_cell(self._expression(), etype))
                    if not self._accept("op", ","):
                        break
                self._expect("op", "]")
                if len(init_cells) > size:
                    raise self._error(f"too many initializers for {name!r}", line)
            else:
                init_cells.append(self._const_cell(self._expression(), etype))
        self._expect("op", ";")
        gtype = ("arr", etype) if is_array else etype
        return GlobalVar(name, gtype, size, init_cells, line, self.module)

    def _const_cell(self, expr, etype: str) -> int:
        value = self._const_eval(expr)
        if etype == "i64":
            if not isinstance(value, int):
                raise self._error("integer initializer required")
            return value & 0xFFFFFFFFFFFFFFFF
        if etype == "f64":
            return double_to_bits(float(value))
        return single_to_bits(float(value))

    def _parse_func(self, module: str) -> FuncDef:
        line = self._expect("kw", "fn").line
        name = self._expect("ident").value
        self._expect("op", "(")
        params: list[Param] = []
        if not self._accept("op", ")"):
            while True:
                pname = self._expect("ident").value
                self._expect("op", ":")
                ptype = self._scalar_type()
                if self._accept("op", "["):
                    self._expect("op", "]")
                    ptype = ("arr", ptype)
                params.append(Param(pname, ptype))
                if not self._accept("op", ","):
                    break
            self._expect("op", ")")
        ret = None
        if self._accept("op", "->"):
            ret = self._scalar_type()
        body = self._block()
        return FuncDef(name, params, ret, body, line, module)

    # -- statements ----------------------------------------------------------------------

    def _block(self) -> list:
        self._expect("op", "{")
        body = []
        while not self._accept("op", "}"):
            body.append(self._statement())
        return body

    def _statement(self):
        tok = self.cur
        if tok.kind == "kw":
            if tok.value == "var":
                return self._var_stmt()
            if tok.value == "if":
                return self._if_stmt()
            if tok.value == "while":
                return self._while_stmt()
            if tok.value == "for":
                return self._for_stmt()
            if tok.value == "return":
                self._advance()
                value = None
                if not (self.cur.kind == "op" and self.cur.value == ";"):
                    value = self._expression()
                self._expect("op", ";")
                return Return(value, tok.line)
            if tok.value == "out":
                self._advance()
                self._expect("op", "(")
                value = self._expression()
                self._expect("op", ")")
                self._expect("op", ";")
                return Out(value, tok.line)
            if tok.value == "break":
                self._advance()
                self._expect("op", ";")
                return Break(tok.line)
            if tok.value == "continue":
                self._advance()
                self._expect("op", ";")
                return Continue(tok.line)
        # assignment or expression statement
        expr = self._expression()
        if self._accept("op", "="):
            value = self._expression()
            self._expect("op", ";")
            if not isinstance(expr, (NameRef, Index)):
                raise self._error("assignment target must be a variable or element", tok.line)
            return Assign(expr, value, tok.line)
        self._expect("op", ";")
        return ExprStmt(expr, tok.line)

    def _var_stmt(self) -> VarDecl:
        line = self._expect("kw", "var").line
        name = self._expect("ident").value
        self._expect("op", ":")
        vtype: object = self._scalar_type()
        if self._accept("op", "["):
            # Array *reference* local (holds a base address), e.g.
            # ``var u: real[] = uu + off;``.
            self._expect("op", "]")
            vtype = ("arr", vtype)
        init = None
        if self._accept("op", "="):
            init = self._expression()
        self._expect("op", ";")
        if isinstance(vtype, tuple) and init is None:
            raise self._error("array reference variables need an initializer", line)
        return VarDecl(name, vtype, init, line)

    def _if_stmt(self) -> If:
        line = self._expect("kw", "if").line
        cond = self._expression()
        then_body = self._block()
        else_body: list = []
        if self._accept("kw", "else"):
            if self.cur.kind == "kw" and self.cur.value == "if":
                else_body = [self._if_stmt()]
            else:
                else_body = self._block()
        return If(cond, then_body, else_body, line)

    def _while_stmt(self) -> While:
        line = self._expect("kw", "while").line
        cond = self._expression()
        body = self._block()
        return While(cond, body, line)

    def _for_stmt(self) -> For:
        line = self._expect("kw", "for").line
        var = self._expect("ident").value
        self._expect("kw", "in")
        lo = self._expression()
        self._expect("op", "..")
        hi = self._expression()
        body = self._block()
        return For(var, lo, hi, body, line)

    # -- expressions -----------------------------------------------------------------------

    def _expression(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.cur.kind == "kw" and self.cur.value == "or":
            line = self._advance().line
            right = self._and_expr()
            left = Binary("or", left, right, line)
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.cur.kind == "kw" and self.cur.value == "and":
            line = self._advance().line
            right = self._not_expr()
            left = Binary("and", left, right, line)
        return left

    def _not_expr(self):
        if self.cur.kind == "kw" and self.cur.value == "not":
            line = self._advance().line
            return Unary("not", self._not_expr(), line)
        return self._comparison()

    def _comparison(self):
        left = self._bitor()
        if self.cur.kind == "op" and self.cur.value in _CMP_OPS:
            op = self._advance()
            right = self._bitor()
            return Binary(op.value, left, right, op.line)
        return left

    def _bitor(self):
        left = self._bitand()
        while self.cur.kind == "op" and self.cur.value in ("|", "^"):
            op = self._advance()
            left = Binary(op.value, left, self._bitand(), op.line)
        return left

    def _bitand(self):
        left = self._shift()
        while self.cur.kind == "op" and self.cur.value == "&":
            op = self._advance()
            left = Binary("&", left, self._shift(), op.line)
        return left

    def _shift(self):
        left = self._additive()
        while self.cur.kind == "op" and self.cur.value in ("<<", ">>"):
            op = self._advance()
            left = Binary(op.value, left, self._additive(), op.line)
        return left

    def _additive(self):
        left = self._multiplicative()
        while self.cur.kind == "op" and self.cur.value in ("+", "-"):
            op = self._advance()
            left = Binary(op.value, left, self._multiplicative(), op.line)
        return left

    def _multiplicative(self):
        left = self._unary()
        while self.cur.kind == "op" and self.cur.value in ("*", "/", "%"):
            op = self._advance()
            left = Binary(op.value, left, self._unary(), op.line)
        return left

    def _unary(self):
        if self.cur.kind == "op" and self.cur.value == "-":
            line = self._advance().line
            return Unary("-", self._unary(), line)
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            if self._accept("op", "["):
                index = self._expression()
                self._expect("op", "]")
                expr = Index(expr, index, self.cur.line)
            else:
                return expr

    def _primary(self):
        tok = self.cur
        if tok.kind == "int":
            self._advance()
            return IntLit(int(tok.value, 0), tok.line)
        if tok.kind == "float":
            self._advance()
            return FloatLit(float(tok.value), tok.line)
        if tok.kind == "kw" and tok.value in _SCALAR_TYPES:
            self._advance()
            resolved = self.real_type if tok.value == "real" else tok.value
            self._expect("op", "(")
            operand = self._expression()
            self._expect("op", ")")
            return Cast(resolved, operand, tok.line)
        if tok.kind == "ident":
            self._advance()
            if self._accept("op", "("):
                args = []
                if not self._accept("op", ")"):
                    while True:
                        args.append(self._expression())
                        if not self._accept("op", ","):
                            break
                    self._expect("op", ")")
                return Call(tok.value, args, tok.line)
            return NameRef(tok.value, tok.line)
        if self._accept("op", "("):
            expr = self._expression()
            self._expect("op", ")")
            return expr
        raise self._error(f"unexpected token {tok.value!r} in expression")

    # -- compile-time constant folding -------------------------------------------------------

    def _const_eval(self, expr):
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, NameRef):
            if expr.name in self.consts:
                return self.consts[expr.name][1]
            raise self._error(f"{expr.name!r} is not a compile-time constant", expr.line)
        if isinstance(expr, Unary) and expr.op == "-":
            return -self._const_eval(expr.operand)
        if isinstance(expr, Binary):
            a = self._const_eval(expr.left)
            b = self._const_eval(expr.right)
            op = expr.op
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                if isinstance(a, int) and isinstance(b, int):
                    if b == 0:
                        raise self._error("constant division by zero", expr.line)
                    q = abs(a) // abs(b)
                    return -q if (a < 0) != (b < 0) else q
                return a / b
            if op == "%" and isinstance(a, int) and isinstance(b, int):
                return a - b * (abs(a) // abs(b)) * (1 if (a < 0) == (b < 0) else -1)
            if op == "<<" and isinstance(a, int):
                return a << b
            if op == ">>" and isinstance(a, int):
                return a >> b
        if isinstance(expr, Cast):
            value = self._const_eval(expr.operand)
            return int(value) if expr.target == "i64" else float(value)
        raise self._error("expression is not a compile-time constant")


def parse_source(source: str, module: str, real_type: str = "f64") -> ModuleAst:
    return Parser(source, module, real_type).parse_module()
