"""Code generation: MH AST -> virtual-ISA assembly via AsmBuilder.

Conventions
-----------
* Calling convention: the caller evaluates arguments left to right and
  pushes each one (so argument *i* of *n* lives at ``[fp + 2 + (n-1-i)]``
  in the callee), then ``call``.  The callee prologue is
  ``push fp; mov fp, sp; sub sp, #locals``.  Integer results return in
  ``r0``, floating-point results in ``x0``.  The caller pops the argument
  area and restores any live expression temporaries it saved.
* Expression temporaries: integers use ``r1..r10``, floats ``x1..x11``,
  allocated as a stack per expression tree; ``r11`` is address/move
  scratch.  ``r12/r13`` and ``x14/x15`` are never touched — they belong
  to the instrumentation snippets.
* All locals and arguments occupy one 64-bit stack cell.  ``f32`` values
  live in the low word of their cell, exactly like a single stored to an
  8-byte slot on x86.

Floating-point comparisons follow IEEE semantics: any comparison with a
NaN is false except ``!=``, implemented with the unordered flag the same
way x86 code uses ``jp`` after ``ucomisd``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.builder import AsmBuilder, LabelRef
from repro.compiler import ast_nodes as A
from repro.compiler.ast_nodes import is_arr, is_fp, type_name
from repro.compiler.errors import CompileError
from repro.fpbits.ieee import double_to_bits, single_to_bits
from repro.isa.opcodes import Op, RED_MAX, RED_MIN, RED_SUM
from repro.isa.operands import Imm, Mem, Reg, Xmm

_FP = 14   # frame pointer
_SP = 15   # stack pointer
_SCRATCH = 11  # address/move scratch GPR

_MAX_INT_TEMP = 10   # r1..r10
_MAX_FP_TEMP = 11    # x1..x11

# Opcode selection by FP width.
_OPS64 = {
    "+": Op.ADDSD, "-": Op.SUBSD, "*": Op.MULSD, "/": Op.DIVSD,
    "sqrt": Op.SQRTSD, "abs": Op.ABSSD, "neg": Op.NEGSD,
    "min": Op.MINSD, "max": Op.MAXSD, "ucomi": Op.UCOMISD,
    "sin": Op.SINSD, "cos": Op.COSSD, "exp": Op.EXPSD, "log": Op.LOGSD,
    "mov": Op.MOVSD, "out": Op.OUTSD, "cvtsi": Op.CVTSI2SD,
    "cvttsi": Op.CVTTSD2SI, "allred": Op.ALLRED,
}
_OPS32 = {
    "+": Op.ADDSS, "-": Op.SUBSS, "*": Op.MULSS, "/": Op.DIVSS,
    "sqrt": Op.SQRTSS, "abs": Op.ABSSS, "neg": Op.NEGSS,
    "min": Op.MINSS, "max": Op.MAXSS, "ucomi": Op.UCOMISS,
    "sin": Op.SINSS, "cos": Op.COSSS, "exp": Op.EXPSS, "log": Op.LOGSS,
    "mov": Op.MOVSS, "out": Op.OUTSS, "cvtsi": Op.CVTSI2SS,
    "cvttsi": Op.CVTTSS2SI, "allred": Op.ALLREDSS,
}

_INT_BIN = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.IMUL, "/": Op.IDIV, "%": Op.IREM,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR, "<<": Op.SHL, ">>": Op.SHR,
}

# branch-if-true / branch-if-false opcode pairs for integer comparisons
_INT_CMP_TRUE = {
    "==": Op.JE, "!=": Op.JNE, "<": Op.JL, "<=": Op.JLE, ">": Op.JG, ">=": Op.JGE,
}
_INT_CMP_FALSE = {
    "==": Op.JNE, "!=": Op.JE, "<": Op.JGE, "<=": Op.JG, ">": Op.JLE, ">=": Op.JL,
}

_TRANSCENDENTALS = ("sin", "cos", "exp", "log")


def _fp_ops(t: str) -> dict:
    return _OPS64 if t == "f64" else _OPS32


@dataclass(slots=True)
class _FuncCtx:
    func: A.FuncDef
    module: str
    nargs: int
    locals: list  # list of scope dicts: name -> (kind, offset/addr, type)
    n_locals: int
    next_local: int = 0
    int_top: int = 1
    fp_top: int = 1
    loop_stack: list = field(default_factory=list)  # (break_label, continue_label)


class CodeGen:
    def __init__(self, modules: list[A.ModuleAst], options) -> None:
        self.modules = modules
        self.options = options
        self.builder = AsmBuilder(options.name)
        self.funcs: dict[str, A.FuncDef] = {}
        self.global_syms: dict[str, tuple] = {}  # name -> (addr, type)
        self.consts_by_module: dict[str, dict] = {}

    # -- driver -----------------------------------------------------------------

    def generate(self):
        for mod in self.modules:
            self.consts_by_module[mod.name] = mod.consts
            for g in mod.globals:
                if g.name in self.global_syms:
                    raise CompileError(f"duplicate global {g.name!r}", g.line, mod.name)
                addr = self.builder.global_(g.name, g.size, g.init)
                self.global_syms[g.name] = (addr, g.type)
            for fn in mod.functions:
                if fn.name in self.funcs:
                    raise CompileError(f"duplicate function {fn.name!r}", fn.line, mod.name)
                self.funcs[fn.name] = fn

        if self.options.entry not in self.funcs:
            raise CompileError(f"no {self.options.entry!r} function defined")
        entry_fn = self.funcs[self.options.entry]
        if entry_fn.params:
            raise CompileError(
                f"{self.options.entry!r} must take no parameters", entry_fn.line
            )

        b = self.builder
        b.module(self.modules[0].name if self.modules else "main")
        b.func("_start")
        b.emit(Op.CALL, LabelRef(self.options.entry))
        b.emit(Op.HALT)
        b.endfunc()

        for mod in self.modules:
            b.module(mod.name)
            for fn in mod.functions:
                self._gen_func(fn, mod)

        return b.link(entry="_start")

    # -- function ------------------------------------------------------------------

    def _count_locals(self, body: list) -> int:
        count = 0
        for stmt in body:
            if isinstance(stmt, A.VarDecl):
                count += 1
            elif isinstance(stmt, A.For):
                count += 2 + self._count_locals(stmt.body)
            elif isinstance(stmt, A.If):
                count += self._count_locals(stmt.then_body)
                count += self._count_locals(stmt.else_body)
            elif isinstance(stmt, A.While):
                count += self._count_locals(stmt.body)
        return count

    def _gen_func(self, fn: A.FuncDef, mod: A.ModuleAst) -> None:
        b = self.builder
        n_locals = self._count_locals(fn.body)
        scope: dict[str, tuple] = {}
        nargs = len(fn.params)
        for i, p in enumerate(fn.params):
            if p.name in scope:
                raise CompileError(f"duplicate parameter {p.name!r}", fn.line, mod.name)
            offset = 2 + (nargs - 1 - i)
            scope[p.name] = ("arg", offset, p.type)
        ctx = _FuncCtx(fn, mod.name, nargs, [scope], n_locals)

        b.func(fn.name)
        b.emit(Op.PUSH, Reg(_FP), line=fn.line)
        b.emit(Op.MOV, Reg(_FP), Reg(_SP), line=fn.line)
        if n_locals:
            b.emit(Op.SUB, Reg(_SP), Imm(n_locals), line=fn.line)
        self._gen_body(fn.body, ctx)
        # Implicit epilogue for control paths that fall off the end.
        self._emit_epilogue(ctx, fn.line)
        b.endfunc()

    def _emit_epilogue(self, ctx: _FuncCtx, line: int) -> None:
        b = self.builder
        b.emit(Op.MOV, Reg(_SP), Reg(_FP), line=line)
        b.emit(Op.POP, Reg(_FP), line=line)
        b.emit(Op.RET, line=line)

    # -- scopes & lookup ----------------------------------------------------------------

    def _lookup(self, name: str, ctx: _FuncCtx, line: int):
        for scope in reversed(ctx.locals):
            if name in scope:
                return scope[name]
        if name in self.global_syms:
            addr, gtype = self.global_syms[name]
            return ("global", addr, gtype)
        consts = self.consts_by_module.get(ctx.module, {})
        if name in consts:
            ctype, value = consts[name]
            return ("const", value, ctype)
        raise CompileError(f"undefined name {name!r}", line, ctx.module)

    def _alloc_local(self, name: str, vtype, ctx: _FuncCtx, line: int) -> int:
        if name in ctx.locals[-1]:
            raise CompileError(f"duplicate variable {name!r}", line, ctx.module)
        if ctx.next_local >= ctx.n_locals:
            raise CompileError("internal: local slot overflow", line, ctx.module)
        offset = -(1 + ctx.next_local)
        ctx.next_local += 1
        ctx.locals[-1][name] = ("local", offset, vtype)
        return offset

    # -- statements ---------------------------------------------------------------------

    def _gen_body(self, body: list, ctx: _FuncCtx) -> None:
        ctx.locals.append({})
        for stmt in body:
            self._gen_stmt(stmt, ctx)
        ctx.locals.pop()

    def _gen_stmt(self, stmt, ctx: _FuncCtx) -> None:
        b = self.builder
        if isinstance(stmt, A.VarDecl):
            offset = self._alloc_local(stmt.name, stmt.type, ctx, stmt.line)
            if stmt.init is not None:
                t, slot = self._expr(stmt.init, ctx, want=stmt.type)
                self._coerce(t, stmt.type, stmt.line, ctx)
                self._store_cell(Mem(base=_FP, disp=offset), stmt.type, slot, stmt.line)
                self._release(t, ctx)
            else:
                b.emit(Op.MOV, Mem(base=_FP, disp=offset), Imm(0), line=stmt.line)
            return
        if isinstance(stmt, A.Assign):
            self._gen_assign(stmt, ctx)
            return
        if isinstance(stmt, A.If):
            l_else = b.fresh_label("else")
            l_end = b.fresh_label("endif")
            self._branch_false(stmt.cond, l_else, ctx)
            self._gen_body(stmt.then_body, ctx)
            if stmt.else_body:
                b.emit(Op.JMP, LabelRef(l_end), line=stmt.line)
                b.mark(l_else)
                self._gen_body(stmt.else_body, ctx)
                b.mark(l_end)
            else:
                b.mark(l_else)
            return
        if isinstance(stmt, A.While):
            l_cond = b.fresh_label("while")
            l_end = b.fresh_label("wend")
            b.mark(l_cond)
            self._branch_false(stmt.cond, l_end, ctx)
            ctx.loop_stack.append((l_end, l_cond))
            self._gen_body(stmt.body, ctx)
            ctx.loop_stack.pop()
            b.emit(Op.JMP, LabelRef(l_cond), line=stmt.line)
            b.mark(l_end)
            return
        if isinstance(stmt, A.For):
            self._gen_for(stmt, ctx)
            return
        if isinstance(stmt, A.Return):
            fn = ctx.func
            if stmt.value is None:
                if fn.ret is not None:
                    raise CompileError("missing return value", stmt.line, ctx.module)
            else:
                if fn.ret is None:
                    raise CompileError(
                        f"{fn.name!r} returns no value", stmt.line, ctx.module
                    )
                t, slot = self._expr(stmt.value, ctx, want=fn.ret)
                self._coerce(t, fn.ret, stmt.line, ctx)
                if is_fp(fn.ret):
                    b.emit(_fp_ops(fn.ret)["mov"], Xmm(0), Xmm(slot), line=stmt.line)
                else:
                    b.emit(Op.MOV, Reg(0), Reg(slot), line=stmt.line)
                self._release(t, ctx)
            self._emit_epilogue(ctx, stmt.line)
            return
        if isinstance(stmt, A.Out):
            t, slot = self._expr(stmt.value, ctx)
            if is_fp(t):
                b.emit(_fp_ops(t)["out"], Xmm(slot), line=stmt.line)
            elif t == "i64":
                b.emit(Op.OUTI, Reg(slot), line=stmt.line)
            else:
                raise CompileError(f"cannot out a {type_name(t)}", stmt.line, ctx.module)
            self._release(t, ctx)
            return
        if isinstance(stmt, A.Break):
            if not ctx.loop_stack:
                raise CompileError("break outside a loop", stmt.line, ctx.module)
            b.emit(Op.JMP, LabelRef(ctx.loop_stack[-1][0]), line=stmt.line)
            return
        if isinstance(stmt, A.Continue):
            if not ctx.loop_stack:
                raise CompileError("continue outside a loop", stmt.line, ctx.module)
            b.emit(Op.JMP, LabelRef(ctx.loop_stack[-1][1]), line=stmt.line)
            return
        if isinstance(stmt, A.ExprStmt):
            t = self._expr_void(stmt.expr, ctx)
            return
        raise CompileError(f"unhandled statement {stmt!r}")

    def _gen_for(self, stmt: A.For, ctx: _FuncCtx) -> None:
        b = self.builder
        ctx.locals.append({})
        var_off = self._alloc_local(stmt.var, "i64", ctx, stmt.line)
        hi_off = self._alloc_local(f".hi{stmt.line}.{var_off}", "i64", ctx, stmt.line)

        t, slot = self._expr(stmt.lo, ctx)
        if t != "i64":
            raise CompileError("for bounds must be i64", stmt.line, ctx.module)
        b.emit(Op.MOV, Mem(base=_FP, disp=var_off), Reg(slot), line=stmt.line)
        self._release(t, ctx)
        t, slot = self._expr(stmt.hi, ctx)
        if t != "i64":
            raise CompileError("for bounds must be i64", stmt.line, ctx.module)
        b.emit(Op.MOV, Mem(base=_FP, disp=hi_off), Reg(slot), line=stmt.line)
        self._release(t, ctx)

        l_cond = b.fresh_label("for")
        l_cont = b.fresh_label("fcont")
        l_end = b.fresh_label("fend")
        b.mark(l_cond)
        r = Reg(self._claim_int(ctx, stmt.line))
        r2 = Reg(self._claim_int(ctx, stmt.line))
        b.emit(Op.MOV, r, Mem(base=_FP, disp=var_off), line=stmt.line)
        b.emit(Op.MOV, r2, Mem(base=_FP, disp=hi_off), line=stmt.line)
        b.emit(Op.CMP, r, r2, line=stmt.line)
        ctx.int_top -= 2
        b.emit(Op.JGE, LabelRef(l_end), line=stmt.line)

        ctx.loop_stack.append((l_end, l_cont))
        self._gen_body(stmt.body, ctx)
        ctx.loop_stack.pop()

        b.mark(l_cont)
        r = Reg(self._claim_int(ctx, stmt.line))
        b.emit(Op.MOV, r, Mem(base=_FP, disp=var_off), line=stmt.line)
        b.emit(Op.INC, r, line=stmt.line)
        b.emit(Op.MOV, Mem(base=_FP, disp=var_off), r, line=stmt.line)
        ctx.int_top -= 1
        b.emit(Op.JMP, LabelRef(l_cond), line=stmt.line)
        b.mark(l_end)
        ctx.locals.pop()

    def _gen_assign(self, stmt: A.Assign, ctx: _FuncCtx) -> None:
        b = self.builder
        target = stmt.target
        if isinstance(target, A.NameRef):
            kind, where, ttype = self._lookup(target.name, ctx, target.line)
            if kind == "const":
                raise CompileError(
                    f"cannot assign to const {target.name!r}", stmt.line, ctx.module
                )
            if is_arr(ttype):
                raise CompileError(
                    f"cannot assign whole array {target.name!r}", stmt.line, ctx.module
                )
            t, slot = self._expr(stmt.value, ctx, want=ttype)
            self._coerce(t, ttype, stmt.line, ctx)
            dest = (
                Mem(disp=where) if kind == "global" else Mem(base=_FP, disp=where)
            )
            self._store_cell(dest, ttype, slot, stmt.line)
            self._release(t, ctx)
            return
        if isinstance(target, A.Index):
            base_t, addr_slot = self._gen_element_addr(target, ctx)
            t, vslot = self._expr(stmt.value, ctx, want=base_t)
            self._coerce(t, base_t, stmt.line, ctx)
            self._store_cell(Mem(base=addr_slot), base_t, vslot, stmt.line)
            self._release(t, ctx)
            ctx.int_top -= 1  # release addr_slot
            return
        raise CompileError("bad assignment target", stmt.line, ctx.module)

    # -- element addressing ------------------------------------------------------------

    def _gen_element_addr(self, node: A.Index, ctx: _FuncCtx) -> tuple:
        """Evaluate &base[index]; returns (elem_type, int slot holding address)."""
        base_t, base_slot = self._expr(node.base, ctx)
        if not is_arr(base_t):
            raise CompileError(
                f"cannot index a {type_name(base_t)}", node.line, ctx.module
            )
        idx_t, idx_slot = self._expr(node.index, ctx)
        if idx_t != "i64":
            raise CompileError("array index must be i64", node.line, ctx.module)
        self.builder.emit(Op.ADD, Reg(base_slot), Reg(idx_slot), line=node.line)
        ctx.int_top -= 1  # release idx_slot; base_slot now holds the address
        return base_t[1], base_slot

    # -- cell load/store helpers -----------------------------------------------------------

    def _store_cell(self, dest: Mem, t, slot: int, line: int) -> None:
        b = self.builder
        if t == "f64":
            b.emit(Op.MOVSD, dest, Xmm(slot), line=line)
        elif t == "f32":
            b.emit(Op.MOVSS, dest, Xmm(slot), line=line)
        else:
            b.emit(Op.MOV, dest, Reg(slot), line=line)

    def _load_cell(self, src: Mem, t, slot: int, line: int) -> None:
        b = self.builder
        if t == "f64":
            b.emit(Op.MOVSD, Xmm(slot), src, line=line)
        elif t == "f32":
            b.emit(Op.MOVSS, Xmm(slot), src, line=line)
        else:
            b.emit(Op.MOV, Reg(slot), src, line=line)

    # -- temp management --------------------------------------------------------------------

    def _claim_int(self, ctx: _FuncCtx, line: int) -> int:
        if ctx.int_top > _MAX_INT_TEMP:
            raise CompileError("expression too deep (integer temps)", line, ctx.module)
        slot = ctx.int_top
        ctx.int_top += 1
        return slot

    def _claim_fp(self, ctx: _FuncCtx, line: int) -> int:
        if ctx.fp_top > _MAX_FP_TEMP:
            raise CompileError("expression too deep (fp temps)", line, ctx.module)
        slot = ctx.fp_top
        ctx.fp_top += 1
        return slot

    def _release(self, t, ctx: _FuncCtx) -> None:
        if is_fp(t):
            ctx.fp_top -= 1
        else:  # i64 and array references live in the int bank
            ctx.int_top -= 1

    def _coerce(self, actual, expected, line: int, ctx: _FuncCtx) -> None:
        if expected is not None and actual != expected:
            raise CompileError(
                f"type mismatch: expected {type_name(expected)}, got {type_name(actual)}"
                " (use an explicit cast)",
                line,
                ctx.module,
            )

    # -- expressions ----------------------------------------------------------------------------

    def _expr_void(self, expr, ctx: _FuncCtx):
        """Expression statement: allow void calls, discard other values."""
        if isinstance(expr, A.Call):
            t = self._gen_call(expr, ctx, void_ok=True)
            if t is not None:
                self._release(t, ctx)
            return None
        t, _slot = self._expr(expr, ctx)
        self._release(t, ctx)
        return None

    def _expr(self, expr, ctx: _FuncCtx, want=None) -> tuple:
        """Generate *expr*; returns (type, slot).  The slot is claimed —
        the caller must ``_release`` it.  *want* guides literal typing."""
        b = self.builder
        if isinstance(expr, A.IntLit):
            if want in ("f64", "f32"):
                return self._materialize_fp(float(expr.value), want, ctx, expr.line)
            slot = self._claim_int(ctx, expr.line)
            b.emit(Op.MOV, Reg(slot), Imm(expr.value), line=expr.line)
            return "i64", slot
        if isinstance(expr, A.FloatLit):
            t = want if want in ("f64", "f32") else self.options.real_type
            return self._materialize_fp(expr.value, t, ctx, expr.line)
        if isinstance(expr, A.NameRef):
            kind, where, t = self._lookup(expr.name, ctx, expr.line)
            if kind == "const":
                if t == "i64":
                    slot = self._claim_int(ctx, expr.line)
                    b.emit(Op.MOV, Reg(slot), Imm(where), line=expr.line)
                    return "i64", slot
                return self._materialize_fp(float(where), t, ctx, expr.line)
            if is_arr(t):
                slot = self._claim_int(ctx, expr.line)
                if kind == "global":
                    b.emit(Op.MOV, Reg(slot), Imm(where), line=expr.line)
                else:  # array parameter: cell holds the base address
                    b.emit(Op.MOV, Reg(slot), Mem(base=_FP, disp=where), line=expr.line)
                return t, slot
            src = Mem(disp=where) if kind == "global" else Mem(base=_FP, disp=where)
            slot = self._claim_fp(ctx, expr.line) if is_fp(t) else self._claim_int(ctx, expr.line)
            self._load_cell(src, t, slot, expr.line)
            return t, slot
        if isinstance(expr, A.Index):
            elem_t, addr_slot = self._gen_element_addr(expr, ctx)
            if is_fp(elem_t):
                slot = self._claim_fp(ctx, expr.line)
                self._load_cell(Mem(base=addr_slot), elem_t, slot, expr.line)
                ctx.int_top -= 1  # release address
                return elem_t, slot
            # integer element: reuse the address slot as the value slot
            self._load_cell(Mem(base=addr_slot), elem_t, addr_slot, expr.line)
            return elem_t, addr_slot
        if isinstance(expr, A.Unary):
            if expr.op == "not":
                raise CompileError(
                    "boolean expressions are only allowed in conditions",
                    expr.line, ctx.module,
                )
            t, slot = self._expr(expr.operand, ctx, want=want)
            if is_fp(t):
                b.emit(_fp_ops(t)["neg"], Xmm(slot), Xmm(slot), line=expr.line)
            elif t == "i64":
                b.emit(Op.NEG, Reg(slot), line=expr.line)
            else:
                raise CompileError("cannot negate an array", expr.line, ctx.module)
            return t, slot
        if isinstance(expr, A.Binary):
            return self._gen_binary(expr, ctx, want)
        if isinstance(expr, A.Cast):
            return self._gen_cast(expr, ctx)
        if isinstance(expr, A.Call):
            t = self._gen_call(expr, ctx, void_ok=False)
            assert t is not None
            slot = (ctx.fp_top if is_fp(t) else ctx.int_top) - 1
            return t, slot
        raise CompileError(f"unhandled expression {expr!r}")

    def _materialize_fp(self, value: float, t: str, ctx: _FuncCtx, line: int) -> tuple:
        b = self.builder
        slot = self._claim_fp(ctx, line)
        bits = double_to_bits(value) if t == "f64" else single_to_bits(value)
        b.emit(Op.MOV, Reg(_SCRATCH), Imm(bits), line=line)
        b.emit(Op.MOVQXR, Xmm(slot), Reg(_SCRATCH), line=line)
        return t, slot

    def _gen_binary(self, expr: A.Binary, ctx: _FuncCtx, want) -> tuple:
        b = self.builder
        op = expr.op
        if op in ("and", "or") or op in _INT_CMP_TRUE:
            raise CompileError(
                "boolean expressions are only allowed in conditions",
                expr.line, ctx.module,
            )
        lt, lslot = self._expr(expr.left, ctx, want=want)
        # Array pointer arithmetic: arr + i64 offset.
        if is_arr(lt):
            if op != "+":
                raise CompileError(
                    f"only '+' is defined on arrays, not {op!r}", expr.line, ctx.module
                )
            rt, rslot = self._expr(expr.right, ctx)
            if rt != "i64":
                raise CompileError("array offset must be i64", expr.line, ctx.module)
            b.emit(Op.ADD, Reg(lslot), Reg(rslot), line=expr.line)
            ctx.int_top -= 1
            return lt, lslot
        rt, rslot = self._expr(expr.right, ctx, want=lt)
        if rt != lt:
            raise CompileError(
                f"operand types differ: {type_name(lt)} vs {type_name(rt)}"
                " (use an explicit cast)",
                expr.line, ctx.module,
            )
        if is_fp(lt):
            if op not in ("+", "-", "*", "/"):
                raise CompileError(
                    f"operator {op!r} is not defined on {lt}", expr.line, ctx.module
                )
            b.emit(_fp_ops(lt)[op], Xmm(lslot), Xmm(rslot), line=expr.line)
            ctx.fp_top -= 1
            return lt, lslot
        if op not in _INT_BIN:
            raise CompileError(f"operator {op!r} is not defined on i64", expr.line, ctx.module)
        b.emit(_INT_BIN[op], Reg(lslot), Reg(rslot), line=expr.line)
        ctx.int_top -= 1
        return "i64", lslot

    def _gen_cast(self, expr: A.Cast, ctx: _FuncCtx) -> tuple:
        b = self.builder
        target = expr.target
        t, slot = self._expr(expr.operand, ctx)
        if t == target:
            return t, slot
        line = expr.line
        if target == "i64" and is_fp(t):
            islot = self._claim_int(ctx, line)
            b.emit(_fp_ops(t)["cvttsi"], Reg(islot), Xmm(slot), line=line)
            ctx.fp_top -= 1
            # value slot ordering: released fp slot, claimed int slot
            return "i64", islot
        if is_fp(target) and t == "i64":
            fslot = self._claim_fp(ctx, line)
            b.emit(_fp_ops(target)["cvtsi"], Xmm(fslot), Reg(slot), line=line)
            ctx.int_top -= 1
            return target, fslot
        if target == "f64" and t == "f32":
            b.emit(Op.CVTSS2SD, Xmm(slot), Xmm(slot), line=line)
            return "f64", slot
        if target == "f32" and t == "f64":
            b.emit(Op.CVTSD2SS, Xmm(slot), Xmm(slot), line=line)
            return "f32", slot
        raise CompileError(
            f"cannot cast {type_name(t)} to {type_name(target)}", line, ctx.module
        )

    # -- conditions --------------------------------------------------------------------------------
    #
    # Conditions never materialize booleans; they compile to compare-and-
    # branch sequences.  FP comparisons handle the unordered case with the
    # JP/JNP flag exactly as x86 code does after ucomisd: every comparison
    # with NaN is false, except !=, which is true.

    def _branch_false(self, cond, label: str, ctx: _FuncCtx) -> None:
        b = self.builder
        if isinstance(cond, A.Unary) and cond.op == "not":
            self._branch_true(cond.operand, label, ctx)
            return
        if isinstance(cond, A.Binary) and cond.op == "and":
            self._branch_false(cond.left, label, ctx)
            self._branch_false(cond.right, label, ctx)
            return
        if isinstance(cond, A.Binary) and cond.op == "or":
            l_true = b.fresh_label("ct")
            self._branch_true(cond.left, l_true, ctx)
            self._branch_false(cond.right, label, ctx)
            b.mark(l_true)
            return
        if isinstance(cond, A.Binary) and cond.op in _INT_CMP_TRUE:
            fp = self._emit_compare(cond, ctx)
            line = cond.line
            if fp:
                if cond.op == "!=":
                    l_skip = b.fresh_label("cs")
                    b.emit(Op.JP, LabelRef(l_skip), line=line)
                    b.emit(Op.JE, LabelRef(label), line=line)
                    b.mark(l_skip)
                else:
                    b.emit(Op.JP, LabelRef(label), line=line)
                    b.emit(_INT_CMP_FALSE[cond.op], LabelRef(label), line=line)
            else:
                b.emit(_INT_CMP_FALSE[cond.op], LabelRef(label), line=line)
            return
        raise CompileError(
            "condition must be a comparison or a boolean combination",
            getattr(cond, "line", 0), ctx.module,
        )

    def _branch_true(self, cond, label: str, ctx: _FuncCtx) -> None:
        b = self.builder
        if isinstance(cond, A.Unary) and cond.op == "not":
            self._branch_false(cond.operand, label, ctx)
            return
        if isinstance(cond, A.Binary) and cond.op == "or":
            self._branch_true(cond.left, label, ctx)
            self._branch_true(cond.right, label, ctx)
            return
        if isinstance(cond, A.Binary) and cond.op == "and":
            l_false = b.fresh_label("cf")
            self._branch_false(cond.left, l_false, ctx)
            self._branch_true(cond.right, label, ctx)
            b.mark(l_false)
            return
        if isinstance(cond, A.Binary) and cond.op in _INT_CMP_TRUE:
            fp = self._emit_compare(cond, ctx)
            line = cond.line
            if fp:
                if cond.op == "!=":
                    b.emit(Op.JP, LabelRef(label), line=line)
                    b.emit(Op.JNE, LabelRef(label), line=line)
                elif cond.op in ("==", "<="):
                    l_skip = b.fresh_label("cs")
                    b.emit(Op.JP, LabelRef(l_skip), line=line)
                    b.emit(_INT_CMP_TRUE[cond.op], LabelRef(label), line=line)
                    b.mark(l_skip)
                else:  # <, >, >= have !unord built into their conditions
                    b.emit(_INT_CMP_TRUE[cond.op], LabelRef(label), line=line)
            else:
                b.emit(_INT_CMP_TRUE[cond.op], LabelRef(label), line=line)
            return
        raise CompileError(
            "condition must be a comparison or a boolean combination",
            getattr(cond, "line", 0), ctx.module,
        )

    def _emit_compare(self, cond: A.Binary, ctx: _FuncCtx) -> bool:
        """Emit the compare for a condition; returns True if floating-point."""
        b = self.builder
        lt, lslot = self._expr(cond.left, ctx)
        rt, rslot = self._expr(cond.right, ctx, want=lt)
        if lt != rt:
            raise CompileError(
                f"comparison types differ: {type_name(lt)} vs {type_name(rt)}",
                cond.line, ctx.module,
            )
        if is_fp(lt):
            b.emit(_fp_ops(lt)["ucomi"], Xmm(lslot), Xmm(rslot), line=cond.line)
            ctx.fp_top -= 2
            return True
        if lt != "i64":
            raise CompileError("cannot compare arrays", cond.line, ctx.module)
        b.emit(Op.CMP, Reg(lslot), Reg(rslot), line=cond.line)
        ctx.int_top -= 2
        return False

    # -- calls -----------------------------------------------------------------------------------

    def _gen_call(self, call: A.Call, ctx: _FuncCtx, void_ok: bool):
        builtin = self._try_builtin(call, ctx, void_ok)
        if builtin is not NotImplemented:
            return builtin
        fd = self.funcs.get(call.name)
        if fd is None:
            raise CompileError(f"undefined function {call.name!r}", call.line, ctx.module)
        if len(call.args) != len(fd.params):
            raise CompileError(
                f"{call.name!r} expects {len(fd.params)} arguments, got {len(call.args)}",
                call.line, ctx.module,
            )
        b = self.builder
        line = call.line

        saved_int = ctx.int_top
        saved_fp = ctx.fp_top
        # Save live expression temporaries across the call.
        for r in range(1, saved_int):
            b.emit(Op.PUSH, Reg(r), line=line)
        for x in range(1, saved_fp):
            b.emit(Op.MOVQRX, Reg(_SCRATCH), Xmm(x), line=line)
            b.emit(Op.PUSH, Reg(_SCRATCH), line=line)

        ctx.int_top = 1
        ctx.fp_top = 1
        for arg, param in zip(call.args, fd.params):
            t, slot = self._expr(arg, ctx, want=param.type if not is_arr(param.type) else None)
            if is_arr(param.type):
                if t != param.type:
                    raise CompileError(
                        f"argument for {param.name!r} must be {type_name(param.type)},"
                        f" got {type_name(t)}",
                        call.line, ctx.module,
                    )
                b.emit(Op.PUSH, Reg(slot), line=line)
            elif is_fp(param.type):
                self._coerce(t, param.type, call.line, ctx)
                b.emit(Op.MOVQRX, Reg(_SCRATCH), Xmm(slot), line=line)
                b.emit(Op.PUSH, Reg(_SCRATCH), line=line)
            else:
                self._coerce(t, param.type, call.line, ctx)
                b.emit(Op.PUSH, Reg(slot), line=line)
            self._release(t, ctx)

        b.emit(Op.CALL, LabelRef(call.name), line=line)
        if fd.params:
            b.emit(Op.ADD, Reg(_SP), Imm(len(fd.params)), line=line)

        # Restore saved temporaries (reverse order).
        for x in range(saved_fp - 1, 0, -1):
            b.emit(Op.POP, Reg(_SCRATCH), line=line)
            b.emit(Op.MOVQXR, Xmm(x), Reg(_SCRATCH), line=line)
        for r in range(saved_int - 1, 0, -1):
            b.emit(Op.POP, Reg(r), line=line)
        ctx.int_top = saved_int
        ctx.fp_top = saved_fp

        if fd.ret is None:
            if not void_ok:
                raise CompileError(
                    f"{call.name!r} returns no value", call.line, ctx.module
                )
            return None
        if is_fp(fd.ret):
            slot = self._claim_fp(ctx, line)
            b.emit(_fp_ops(fd.ret)["mov"], Xmm(slot), Xmm(0), line=line)
        else:
            slot = self._claim_int(ctx, line)
            b.emit(Op.MOV, Reg(slot), Reg(0), line=line)
        return fd.ret

    # -- builtins ------------------------------------------------------------------------------------

    def _try_builtin(self, call: A.Call, ctx: _FuncCtx, void_ok: bool):
        name = call.name
        b = self.builder
        line = call.line
        rt = self.options.real_type

        def arity(n: int) -> None:
            if len(call.args) != n:
                raise CompileError(
                    f"{name}() expects {n} argument(s)", line, ctx.module
                )

        if name == "sqrt" or name == "abs":
            arity(1)
            t, slot = self._expr(call.args[0], ctx, want=rt)
            if not is_fp(t):
                raise CompileError(f"{name}() needs a float", line, ctx.module)
            b.emit(_fp_ops(t)[name], Xmm(slot), Xmm(slot), line=line)
            return t
        if name in ("min", "max"):
            arity(2)
            t, slot = self._expr(call.args[0], ctx, want=rt)
            t2, slot2 = self._expr(call.args[1], ctx, want=t)
            if not is_fp(t) or t2 != t:
                raise CompileError(f"{name}() needs two matching floats", line, ctx.module)
            b.emit(_fp_ops(t)[name], Xmm(slot), Xmm(slot2), line=line)
            ctx.fp_top -= 1
            return t
        if name in _TRANSCENDENTALS:
            arity(1)
            if self.options.transcendentals == "library":
                lib_call = A.Call(f"mh_{name}", call.args, line)
                if f"mh_{name}" not in self.funcs:
                    raise CompileError(
                        f"transcendentals='library' requires an mh_{name} function "
                        "(include the mlib module)",
                        line, ctx.module,
                    )
                return self._gen_call(lib_call, ctx, void_ok=False)
            t, slot = self._expr(call.args[0], ctx, want=rt)
            if not is_fp(t):
                raise CompileError(f"{name}() needs a float", line, ctx.module)
            b.emit(_fp_ops(t)[name], Xmm(slot), Xmm(slot), line=line)
            return t
        if name == "rand_u64":
            arity(0)
            slot = self._claim_int(ctx, line)
            b.emit(Op.RAND, Reg(slot), line=line)
            return "i64"
        if name == "frand":
            arity(0)
            # Uniform in [0, 1): top bits of a xorshift64* draw, scaled.
            islot = self._claim_int(ctx, line)
            b.emit(Op.RAND, Reg(islot), line=line)
            fslot = self._claim_fp(ctx, line)
            if rt == "f64":
                b.emit(Op.SHR, Reg(islot), Imm(11), line=line)
                b.emit(Op.CVTSI2SD, Xmm(fslot), Reg(islot), line=line)
                scale = double_to_bits(2.0 ** -53)
                b.emit(Op.MOV, Reg(_SCRATCH), Imm(scale), line=line)
                slot2 = self._claim_fp(ctx, line)
                b.emit(Op.MOVQXR, Xmm(slot2), Reg(_SCRATCH), line=line)
                b.emit(Op.MULSD, Xmm(fslot), Xmm(slot2), line=line)
                ctx.fp_top -= 1
            else:
                # Same draw geometry as the f64 path (53 significant bits
                # rounded into the single, then an exact power-of-two
                # scale), so the manually converted build is bit-for-bit
                # identical to the instrumented all-single build.
                b.emit(Op.SHR, Reg(islot), Imm(11), line=line)
                b.emit(Op.CVTSI2SS, Xmm(fslot), Reg(islot), line=line)
                scale = single_to_bits(2.0 ** -53)
                b.emit(Op.MOV, Reg(_SCRATCH), Imm(scale), line=line)
                slot2 = self._claim_fp(ctx, line)
                b.emit(Op.MOVQXR, Xmm(slot2), Reg(_SCRATCH), line=line)
                b.emit(Op.MULSS, Xmm(fslot), Xmm(slot2), line=line)
                ctx.fp_top -= 1
            # release the integer draw; move fp value down to its slot
            ctx.int_top -= 1
            return rt
        if name == "mpi_rank" or name == "mpi_size":
            arity(0)
            slot = self._claim_int(ctx, line)
            b.emit(Op.MPIRANK if name == "mpi_rank" else Op.MPISIZE, Reg(slot), line=line)
            return "i64"
        if name in ("allreduce_sum", "allreduce_min", "allreduce_max"):
            arity(1)
            red = {"allreduce_sum": RED_SUM, "allreduce_min": RED_MIN,
                   "allreduce_max": RED_MAX}[name]
            t, slot = self._expr(call.args[0], ctx, want=rt)
            if not is_fp(t):
                raise CompileError(f"{name}() needs a float", line, ctx.module)
            b.emit(_fp_ops(t)["allred"], Xmm(slot), Imm(red), line=line)
            return t
        if name == "barrier":
            arity(0)
            b.emit(Op.BARRIER, line=line)
            return None if void_ok else self._void_error(name, line, ctx)
        if name == "bcast":
            arity(2)
            root = call.args[1]
            if not isinstance(root, A.IntLit):
                raise CompileError(
                    "bcast() root must be an integer literal", line, ctx.module
                )
            t, slot = self._expr(call.args[0], ctx, want=rt)
            if not is_fp(t):
                raise CompileError("bcast() needs a float", line, ctx.module)
            b.emit(Op.BCASTSD, Xmm(slot), Imm(root.value), line=line)
            return t
        if name == "allreduce_sum_vec":
            arity(2)
            at, aslot = self._expr(call.args[0], ctx)
            if not is_arr(at) or not is_fp(at[1]):
                raise CompileError(
                    f"{name}() needs a float array", line, ctx.module
                )
            nt, nslot = self._expr(call.args[1], ctx)
            if nt != "i64":
                raise CompileError(f"{name}() count must be i64", line, ctx.module)
            opcode = Op.ALLREDV if at[1] == "f64" else Op.ALLREDVSS
            b.emit(opcode, Mem(base=aslot), Imm(RED_SUM), Reg(nslot), line=line)
            ctx.int_top -= 2
            return None if void_ok else self._void_error(name, line, ctx)
        return NotImplemented

    def _void_error(self, name: str, line: int, ctx: _FuncCtx):
        raise CompileError(f"{name}() returns no value", line, ctx.module)
