"""The `Telemetry` hub: one object, many sinks, optional metrics.

Every instrumented layer takes an optional ``telemetry`` argument and
falls back to :data:`NULL_TELEMETRY`, a disabled singleton whose
``emit`` is one attribute check and a return.  Hot paths that would pay
to *construct* event fields (label formatting, histogram aggregation)
additionally guard on ``telemetry.enabled`` — the two conventions
together keep the disabled cost at effectively zero and, crucially,
leave the VM's deterministic cycle accounting untouched either way.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.telemetry.events import validate_event
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import Sink


class Telemetry:
    """Routes events to sinks and aggregate updates to a metrics registry.

    Parameters
    ----------
    sinks:
        Iterable of :class:`~repro.telemetry.sinks.Sink` objects; every
        emitted event is delivered to each, in order.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`.  When
        present it consumes every emitted event, including the
        ``metric.count`` / ``metric.observe`` events that back the
        :meth:`count` / :meth:`observe` shorthands.
    validate:
        Debug mode: run :func:`~repro.telemetry.events.validate_event`
        on every emitted event and raise on a schema violation.  The
        test suite turns this on globally so no layer can ship an event
        missing its ``EVENT_FIELDS`` floor.

    A telemetry with no sinks and no metrics is *disabled*: ``emit`` is a
    near-free no-op and ``enabled`` is False.
    """

    __slots__ = ("sinks", "metrics", "enabled", "validate", "_t0")

    def __init__(
        self,
        sinks=(),
        metrics: MetricsRegistry | None = None,
        validate: bool = False,
    ) -> None:
        self.sinks: list[Sink] = list(sinks)
        self.metrics = metrics
        self.enabled = bool(self.sinks) or metrics is not None
        self.validate = validate
        self._t0 = time.perf_counter()

    # -- event stream ------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        """Emit one event; free when disabled (single attribute check)."""
        if not self.enabled:
            return
        event = {"kind": kind, "ts": round(time.perf_counter() - self._t0, 6)}
        event.update(fields)
        if self.validate:
            validate_event(event)
        for sink in self.sinks:
            sink.emit(event)
        if self.metrics is not None:
            self.metrics.consume(event)

    @contextmanager
    def span(self, kind: str, **fields):
        """Emit ``<kind>.begin`` / ``<kind>.end`` around a block.

        The end event carries ``wall_s``; exceptions propagate but the
        end event is still emitted (with ``error`` set) so traces never
        contain dangling spans.
        """
        if not self.enabled:
            yield self
            return
        self.emit(kind + ".begin", **fields)
        start = time.perf_counter()
        error = ""
        try:
            yield self
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            wall = round(time.perf_counter() - start, 6)
            if error:
                self.emit(kind + ".end", wall_s=wall, error=error, **fields)
            else:
                self.emit(kind + ".end", wall_s=wall, **fields)

    # -- direct metric updates --------------------------------------------
    # These ride the event stream (metric.count / metric.observe) rather
    # than poking the registry directly, so a persisted trace replays
    # into a byte-identical MetricsRegistry summary.

    def count(self, name: str, value: int = 1) -> None:
        if self.enabled:
            self.emit("metric.count", name=name, value=value)

    def observe(self, name: str, value) -> None:
        if self.enabled:
            self.emit("metric.observe", name=name, value=value)

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Flush and close every sink (idempotent)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: The disabled singleton every layer defaults to.
NULL_TELEMETRY = Telemetry()
