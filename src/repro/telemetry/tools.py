"""Trace toolkit: read JSONL traces back and make them explainable.

Everything in here consumes the same event dicts the hub emits, after
re-validating every line against :data:`~repro.telemetry.events
.EVENT_FIELDS` — a trace that drifted from the schema fails loudly at
load time, not silently in a report.

The key invariant the toolkit leans on: a :class:`MetricsRegistry` is a
pure function of the event stream (``count``/``observe`` ride the
stream as ``metric.*`` events), so :func:`replay_metrics` over a trace
file reproduces the live registry's ``summary()`` byte-for-byte.  That
is what lets ``repro trace summary`` regenerate a finished search's —
serial or cluster — metrics table from nothing but the JSONL.
"""

from __future__ import annotations

from repro.telemetry.events import validate_event
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import read_trace


def load_events(path: str) -> list:
    """Read + validate a JSONL trace; line numbers ride any error."""
    events = read_trace(path)
    for lineno, event in enumerate(events, start=1):
        try:
            validate_event(event)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from None
    return events


def replay_metrics(events: list) -> MetricsRegistry:
    """Feed a trace through a fresh registry (identical to the live one)."""
    registry = MetricsRegistry()
    for event in events:
        registry.consume(event)
    return registry


# -- summary -----------------------------------------------------------------


def summarize(events: list) -> str:
    """Per-kind and per-phase timing plus the replayed metrics table."""
    lines = []
    span = events[-1]["ts"] - events[0]["ts"] if events else 0.0
    lines.append(
        f"trace: {len(events)} events, "
        f"{len({e['kind'] for e in events})} kinds, "
        f"{span:.6g}s span"
    )
    lines.append("")
    lines.append(_kind_table(events))
    phase_table = _phase_table(events)
    if phase_table:
        lines.append("")
        lines.append(phase_table)
    workers = sorted({e["worker"] for e in events if "worker" in e})
    if workers:
        lines.append("")
        lines.append(f"workers: {', '.join(workers)}")
    lines.append("")
    lines.append(replay_metrics(events).summary())
    return "\n".join(lines)


def _kind_table(events: list) -> str:
    per: dict[str, list] = {}
    for event in events:
        entry = per.setdefault(event["kind"], [0, event["ts"], event["ts"]])
        entry[0] += 1
        if event["ts"] < entry[1]:
            entry[1] = event["ts"]
        if event["ts"] > entry[2]:
            entry[2] = event["ts"]
    rows = [("kind", "count", "first_ts", "last_ts")]
    for kind in sorted(per):
        count, first, last = per[kind]
        rows.append((kind, str(count), f"{first:.6g}", f"{last:.6g}"))
    return _align("events by kind:", rows)


def _phase_table(events: list) -> str:
    per: dict[str, list] = {}
    for event in events:
        if event["kind"] != "search.eval":
            continue
        entry = per.setdefault(event["phase"], [0, 0, 0.0])
        entry[0] += 1
        entry[1] += 1 if event["passed"] else 0
        entry[2] += event.get("wall_s", 0.0)
    if not per:
        return ""
    rows = [("phase", "evals", "pass", "wall_s")]
    for phase in sorted(per):
        count, passed, wall = per[phase]
        rows.append((phase, str(count), str(passed), f"{wall:.6g}"))
    return _align("search phases:", rows)


def _align(title: str, rows: list) -> str:
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = [title]
    for k, row in enumerate(rows):
        lines.append(
            "  "
            + row[0].ljust(widths[0])
            + "".join(
                "  " + row[i].rjust(widths[i]) for i in range(1, len(row))
            )
        )
        if k == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


# -- diff --------------------------------------------------------------------


def compare(events_a: list, events_b: list, label_a="a", label_b="b") -> str:
    """Diff two traces: event-kind counts and the replayed counters."""
    kinds_a: dict[str, int] = {}
    kinds_b: dict[str, int] = {}
    for event in events_a:
        kinds_a[event["kind"]] = kinds_a.get(event["kind"], 0) + 1
    for event in events_b:
        kinds_b[event["kind"]] = kinds_b.get(event["kind"], 0) + 1
    rows = [("kind", label_a, label_b, "delta")]
    for kind in sorted(set(kinds_a) | set(kinds_b)):
        na, nb = kinds_a.get(kind, 0), kinds_b.get(kind, 0)
        rows.append((kind, str(na), str(nb), f"{nb - na:+d}"))
    lines = [
        f"compare: {label_a} ({len(events_a)} events) "
        f"vs {label_b} ({len(events_b)} events)",
        "",
        _align("events by kind:", rows),
    ]
    reg_a = replay_metrics(events_a).counters
    reg_b = replay_metrics(events_b).counters
    rows = [("counter", label_a, label_b, "delta")]
    for name in sorted(set(reg_a) | set(reg_b)):
        if name.startswith("events."):
            continue  # already covered by the kind table
        va, vb = reg_a.get(name, 0), reg_b.get(name, 0)
        if va != vb:
            rows.append((name, str(va), str(vb), f"{vb - va:+d}"))
    if len(rows) > 1:
        lines.append("")
        lines.append(_align("counters that differ:", rows))
    return "\n".join(lines)


# -- cycle attribution -------------------------------------------------------


def profile_view(events: list, top: int = 20) -> str:
    """Top cycle sinks: per-site when the trace was profiled, else the
    per-opcode census."""
    sites = [e for e in events if e["kind"] == "profile.site"]
    if sites:
        total = sum(site["cycles"] for site in sites) or 1
        sites.sort(key=lambda s: (-s["cycles"], s["addr"]))
        rows = [("addr", "node", "mnemonic", "execs", "cycles", "share")]
        for site in sites[:top]:
            rows.append(
                (
                    f"{site['addr']:#x}",
                    site["node"] or "-",
                    site["mnemonic"],
                    str(site["execs"]),
                    str(site["cycles"]),
                    f"{100.0 * site['cycles'] / total:.1f}%",
                )
            )
        title = f"top {min(top, len(sites))} of {len(sites)} sites by cycles:"
        return _align(title, rows)
    census = _opcode_totals(events)
    if not census:
        return "no profile.site or vm.opcodes events in this trace"
    total = sum(c for _e, c in census.values()) or 1
    ordered = sorted(census.items(), key=lambda kv: (-kv[1][1], kv[0]))
    rows = [("mnemonic", "execs", "cycles", "share")]
    for mnemonic, (execs, cycles) in ordered[:top]:
        rows.append(
            (
                mnemonic,
                str(execs),
                str(cycles),
                f"{100.0 * cycles / total:.1f}%",
            )
        )
    return _align("opcode census (no per-site profile in trace):", rows)


def _opcode_totals(events: list) -> dict:
    census: dict[str, list] = {}
    for event in events:
        if event["kind"] != "vm.opcodes":
            continue
        for mnemonic, stat in event["opcodes"].items():
            entry = census.setdefault(mnemonic, [0, 0])
            entry[0] += stat["execs"]
            entry[1] += stat["cycles"]
    return census


def flame_view(events: list) -> str:
    """Collapsed-stack cycle attribution (one ``frame;frame;... count``
    per line, the format flamegraph.pl and speedscope ingest)."""
    stacks: dict[str, int] = {}
    program = ""
    for event in events:
        if event["kind"] == "profile.census":
            program = event["program"]
    for event in events:
        if event["kind"] != "profile.site":
            continue
        frames = [program or "program"]
        frames.append(event.get("function") or "(other)")
        if event.get("block"):
            frames.append(event["block"])
        leaf = event["node"] or f"{event['addr']:#x}"
        frames.append(f"{leaf}:{event['mnemonic']}")
        key = ";".join(frames)
        stacks[key] = stacks.get(key, 0) + event["cycles"]
    if not stacks:
        # opcode-census fallback: one level of attribution is still a
        # valid (flat) flame graph.
        for event in events:
            if event["kind"] != "vm.opcodes":
                continue
            name = event.get("program", "program")
            for mnemonic, stat in event["opcodes"].items():
                key = f"{name};{mnemonic}"
                stacks[key] = stacks.get(key, 0) + stat["cycles"]
    return "\n".join(f"{key} {count}" for key, count in sorted(stacks.items()))
