"""In-memory metrics aggregation.

A :class:`MetricsRegistry` keeps two families of series:

* **counters** — monotonically increasing integers (``inc``);
* **observations** — value streams summarized as count/sum/min/max
  (``observe``), the cheap stand-in for a histogram.

A registry attached to a :class:`~repro.telemetry.core.Telemetry` also
*consumes* every emitted event: each event bumps an ``events.<kind>``
counter, and well-known kinds feed their payload into the series above
(``search.eval`` wall times, ``eval.config`` cycles, instrumentation
counters, VM traps, MPI compute/comm attribution).  Because the registry
and the trace are fed by the same stream, ``summary()`` always reconciles
with the trace file.
"""

from __future__ import annotations


class MetricsRegistry:
    """Counters + observation summaries with a plain-text ``summary()``."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        #: name -> [count, total, min, max]
        self.observations: dict[str, list] = {}

    # -- primitive updates -------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value) -> None:
        entry = self.observations.get(name)
        if entry is None:
            self.observations[name] = [1, value, value, value]
        else:
            entry[0] += 1
            entry[1] += value
            if value < entry[2]:
                entry[2] = value
            if value > entry[3]:
                entry[3] = value

    def get(self, name: str, default=0):
        return self.counters.get(name, default)

    # -- event consumption -------------------------------------------------

    def consume(self, event: dict) -> None:
        """Aggregate one emitted event (called by Telemetry.emit)."""
        kind = event["kind"]
        # Direct metric updates ride the stream as their own event kinds;
        # apply them verbatim (no events.* bump — they are not trace
        # milestones, just the transport for count()/observe()).
        if kind == "metric.count":
            self.inc(event["name"], event["value"])
            return
        if kind == "metric.observe":
            self.observe(event["name"], event["value"])
            return
        self.inc(f"events.{kind}")
        if kind == "search.eval":
            self.inc("search.evals")
            self.inc("search.pass" if event["passed"] else "search.fail")
            if "wall_s" in event:
                self.observe("search.eval_wall_s", event["wall_s"])
        elif kind == "eval.config":
            self.inc("eval.configs")
            if event["trap"]:
                self.inc("eval.traps")
            self.observe("eval.cycles", event["cycles"])
            self.observe("eval.wall_s", event["wall_s"])
        elif kind == "instr.stats":
            self.inc("instr.programs")
            self.inc(
                "instr.snippets",
                event["replaced_single"] + event["wrapped_double"],
            )
            self.inc("instr.blocks_split", event["blocks_split"])
            self.inc("instr.checks_emitted", event["checks_emitted"])
            self.inc("instr.checks_skipped", event["checks_skipped"])
            self.inc("instr.bytes_grown", event["bytes_grown"])
        elif kind == "search.queue":
            self.observe("search.queue_depth", event["depth"])
        elif kind == "eval.remote":
            self.inc("cluster.remote_evals")
            self.observe("cluster.eval_wall_s", event["wall_s"])
            if "worker" in event:
                self.inc(f"cluster.tasks.{event['worker']}")
        elif kind == "cluster.heartbeat":
            # Per-worker occupancy: mean outstanding leases over the
            # heartbeat stream approximates time-weighted busy-ness.
            self.observe(f"cluster.busy.{event['worker']}", event["busy"])
        elif kind == "vm.trap":
            self.inc("vm.traps")
        elif kind == "mpi.rank":
            self.observe("mpi.compute_cycles", event["compute_cycles"])
            self.observe("mpi.comm_cycles", event["comm_cycles"])

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """Aligned text table of every counter and observation series."""
        rows = [("metric", "count", "total", "min", "max")]
        for name in sorted(self.counters):
            rows.append((name, str(self.counters[name]), "", "", ""))
        for name in sorted(self.observations):
            n, total, lo, hi = self.observations[name]
            rows.append((name, str(n), _num(total), _num(lo), _num(hi)))
        widths = [max(len(r[i]) for r in rows) for i in range(5)]
        lines = ["telemetry metrics:"]
        for k, row in enumerate(rows):
            lines.append(
                "  "
                + row[0].ljust(widths[0])
                + "".join("  " + row[i].rjust(widths[i]) for i in range(1, 5))
            )
            if k == 0:
                lines.append("  " + "  ".join("-" * w for w in widths))
        return "\n".join(lines) + "\n"


def _num(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
