"""Live TTY progress for long searches.

A sink that turns the search event stream into a single self-updating
status line on stderr — the minimal interactive view of the paper's
hundreds-of-configurations searches.  Rendering is throttled (default
10 Hz) so a fast search does not spend its time repainting a terminal,
and the line is finished with a newline on ``search.end``/``close`` so
ordinary output is never glued to a stale carriage return.

Cluster searches additionally render per-worker occupancy: the
``cluster.*`` lease lifecycle events maintain a worker -> outstanding-
leases map, summarized as e.g. ``workers=3(2 busy)`` on the same line.
"""

from __future__ import annotations

import sys
import time
from collections import deque

from repro.telemetry.sinks import Sink

#: rendered line width (also the span blanked by :meth:`clear`).
_WIDTH = 118


class ProgressRenderer(Sink):
    """Renders ``search.*`` events as a one-line live status display."""

    def __init__(self, stream=None, min_interval: float = 0.1) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.candidates = 0
        self.tested = 0
        self.passed = 0
        self.failed = 0
        self.phase = "bfs"
        self.last_label = ""
        self.workers: dict = {}  # worker id -> outstanding leases
        # Sliding window of search.eval arrival times; only evals feed it
        # (cluster.heartbeat merely repaints), so the displayed rate never
        # collapses to zero under a chatty but idle cluster.
        self._eval_times: deque = deque(maxlen=50)
        self._last_render = 0.0
        self._line_open = False

    def emit(self, event: dict) -> None:
        kind = event["kind"]
        if kind == "search.begin":
            self.candidates = event["candidates"]
            self._render(force=True)
        elif kind == "search.eval":
            self.tested += 1
            if event["passed"]:
                self.passed += 1
            else:
                self.failed += 1
            self.phase = event["phase"]
            self.last_label = event["label"]
            self._eval_times.append(time.perf_counter())
            self._render()
        elif kind == "cluster.worker_join":
            self.workers[event["worker"]] = 0
            self._render()
        elif kind == "cluster.worker_lost":
            self.workers.pop(event["worker"], None)
            self._render()
        elif kind in ("cluster.lease", "cluster.heartbeat"):
            self.workers[event["worker"]] = event["busy"]
            self._render()
        elif kind == "search.end":
            self._render(force=True)
            self._finish()

    def _render(self, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        cluster = ""
        if self.workers:
            busy = sum(1 for leases in self.workers.values() if leases)
            cluster = f"  workers={len(self.workers)}({busy} busy)"
        rate = ""
        if len(self._eval_times) >= 2:
            window = self._eval_times[-1] - self._eval_times[0]
            if window > 0:
                rate = f"  {(len(self._eval_times) - 1) / window:.1f}/s"
        line = (
            f"[search:{self.phase}] {self.tested} tested "
            f"({self.passed} pass / {self.failed} fail) "
            f"of {self.candidates} candidates{rate}{cluster}"
            f"  last={self.last_label}"
        )
        self.stream.write("\r" + line[:_WIDTH].ljust(_WIDTH))
        self.stream.flush()
        self._line_open = True

    def clear(self) -> None:
        """Blank the live line so ordinary output is not interleaved.

        Callers printing to the same stream mid-search (announcements,
        warnings) call this first; the next event repaints the line.
        """
        if self._line_open:
            self.stream.write("\r" + " " * _WIDTH + "\r")
            self.stream.flush()
            self._line_open = False

    def _finish(self) -> None:
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    def close(self) -> None:
        self._finish()
