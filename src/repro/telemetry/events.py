"""Event kinds and the trace schema.

An event is a plain dict with two universal keys —

``kind``
    One of :data:`EVENT_KINDS` (a dotted ``layer.what`` name).
``ts``
    Seconds since the owning :class:`~repro.telemetry.core.Telemetry`
    was created (monotonic clock, so wall math across events is safe).

— plus the kind-specific payload fields listed in :data:`EVENT_FIELDS`.
Extra fields are allowed (the schema states the floor, not the ceiling),
so layers can attach context without a schema bump; missing required
fields are an error.  :func:`validate_event` enforces exactly that and is
what the round-trip tests run over every line of a trace file.
"""

from __future__ import annotations

#: kind -> fields every event of that kind must carry (beyond kind/ts).
EVENT_FIELDS: dict[str, frozenset] = {
    # -- search layer ------------------------------------------------------
    "search.begin": frozenset({"workload", "candidates"}),
    "search.end": frozenset({"workload", "tested", "final", "wall_s"}),
    "search.eval": frozenset({"label", "passed", "cycles", "trap", "phase"}),
    "search.queue": frozenset({"depth", "tested"}),
    "search.descend": frozenset({"label", "action"}),
    "search.refine": frozenset({"drops", "verified"}),
    # analysis-guided prune: a queue item skipped without evaluation
    # because the shadow-value report predicted a verification failure.
    "search.prune": frozenset({"label", "level"}),
    # analysis="auto" economics verdict: whether this search pays for the
    # shadow run, and the measured numbers the decision came from
    # (predicted_saving_s / predicted_cost_s ride along as extras).
    "search.guidance": frozenset({"workload", "analyze", "reason"}),
    # -- evaluation (one per configuration actually executed) --------------
    "eval.config": frozenset({"passed", "cycles", "trap", "wall_s"}),
    # crash-fault tolerance: a worker died, unfinished configs resubmitted
    # on a fresh pool after a backoff; one eval.worker_crash per config
    # that exhausted its bounded retries (classified reason=worker_crash).
    "eval.retry": frozenset({"attempt", "pending"}),
    "eval.worker_crash": frozenset({"attempts"}),
    # -- durable campaigns (repro.store / repro.campaign) -------------------
    # store.hit: a previously decided outcome replayed from the result
    # store instead of executed (resume and warm-start paths).
    "store.hit": frozenset({"key"}),
    "campaign.checkpoint": frozenset({"batch", "tested"}),
    "campaign.resume": frozenset({"batch", "tested"}),
    # -- distributed search service (repro.cluster) -------------------------
    # Coordinator-side lease lifecycle: every event carries the worker's
    # coordinator-assigned id ("w1", "w2", ...).  lease/heartbeat also
    # carry `busy` (that worker's outstanding leases) so live progress
    # can render per-worker occupancy.
    "cluster.worker_join": frozenset({"worker", "name"}),
    "cluster.worker_lost": frozenset({"worker", "leases", "reason"}),
    "cluster.lease": frozenset({"worker", "task", "busy"}),
    "cluster.heartbeat": frozenset({"worker", "busy"}),
    # a lease whose worker died/errored, put back on the queue with
    # exponential backoff (exhausted retries become eval.worker_crash).
    "cluster.requeue": frozenset({"task", "attempts", "reason"}),
    # -- multi-tenant job service (repro.service) ----------------------------
    # Job lifecycle on the service's own trace: submit (accepted over
    # the wire), begin (engine thread started), end (terminal state:
    # complete/failed/cancelled), cancel (request received).  Per-job
    # cluster.*/eval.* events land in that job's own trace instead,
    # tagged with a `job` extra field.
    "service.job.submit": frozenset({"job", "tenant", "workload"}),
    "service.job.begin": frozenset({"job", "workload"}),
    "service.job.end": frozenset({"job", "state"}),
    "service.job.cancel": frozenset({"job"}),
    # -- instrumentation layer ---------------------------------------------
    "instr.stats": frozenset(
        {
            "program",
            "replaced_single",
            "wrapped_double",
            "checks_emitted",
            "checks_skipped",
            "blocks_split",
            "bytes_grown",
        }
    ),
    # -- shadow-value analysis (repro.analysis) ----------------------------
    "analysis.run.begin": frozenset({"workload"}),
    "analysis.run.end": frozenset({"workload"}),
    # -- direct metric updates ---------------------------------------------
    # Telemetry.count()/observe() ride the event stream as these kinds so
    # a JSONL trace replays into a byte-identical MetricsRegistry summary.
    "metric.count": frozenset({"name", "value"}),
    "metric.observe": frozenset({"name", "value"}),
    # -- worker-side evaluation (repro.cluster) ------------------------------
    # One per task executed on a remote worker; the coordinator tags the
    # forwarded event with `worker` (coordinator-assigned id) and
    # `worker_ts` (the worker's own clock) before merging it into the
    # unified trace.  Distinct from eval.config so that "eval.config count
    # == configs_tested" stays true in merged cluster traces.
    "eval.remote": frozenset({"task", "passed", "cycles", "trap", "wall_s"}),
    # -- profiling (repro.profile) ------------------------------------------
    # profile.census: one per profiled run — whole-program totals plus the
    # per-opcode breakdown.  profile.site: one per executed instruction
    # site, with config-tree attribution (`node` is "" for instructions
    # that are not precision candidates).
    "profile.census": frozenset(
        {"program", "steps", "cycles", "sites", "attributed_cycles"}
    ),
    "profile.site": frozenset({"node", "addr", "mnemonic", "execs", "cycles"}),
    # -- VM ----------------------------------------------------------------
    "vm.opcodes": frozenset({"program", "steps", "cycles", "opcodes"}),
    "vm.trap": frozenset({"message"}),
    # -- MPI rank scheduler ------------------------------------------------
    "mpi.rank": frozenset({"rank", "cycles", "compute_cycles", "comm_cycles"}),
    "mpi.run": frozenset({"size", "elapsed", "collectives"}),
}

#: All event kinds a conforming trace may contain.
EVENT_KINDS: frozenset = frozenset(EVENT_FIELDS)


def validate_event(event: dict) -> dict:
    """Check *event* against the schema; returns it unchanged.

    Raises ``ValueError`` on an unknown kind, a missing universal key, or
    a missing kind-specific required field.
    """
    if not isinstance(event, dict):
        raise ValueError(f"event must be a dict, got {type(event).__name__}")
    kind = event.get("kind")
    if kind not in EVENT_FIELDS:
        raise ValueError(f"unknown event kind {kind!r}")
    if "ts" not in event:
        raise ValueError(f"{kind}: missing 'ts'")
    missing = EVENT_FIELDS[kind] - event.keys()
    if missing:
        raise ValueError(f"{kind}: missing required fields {sorted(missing)}")
    return event
