"""Event sinks: where emitted telemetry events go.

A sink is anything with ``emit(event)`` / ``close()``.  The stock sinks:

``NullSink``
    Swallows everything.  Exists mostly for API symmetry — a disabled
    :class:`~repro.telemetry.core.Telemetry` short-circuits before any
    sink is reached, so the null sink is never on a hot path.
``JsonlSink``
    One JSON object per line, the replayable ``trace.jsonl`` format.
``ListSink``
    In-memory capture for tests and programmatic consumers.
"""

from __future__ import annotations

import json


class Sink:
    """Protocol base class (also usable as a no-frills null sink)."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        """Best-effort flush; default is a no-op."""

    def close(self) -> None:
        """Release resources; default is a no-op."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(Sink):
    """Discards every event."""

    def emit(self, event: dict) -> None:
        pass


class ListSink(Sink):
    """Collects events into ``self.events`` (testing / in-process use)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def kinds(self) -> set:
        return {e["kind"] for e in self.events}

    def of_kind(self, kind: str) -> list[dict]:
        return [e for e in self.events if e["kind"] == kind]


class JsonlSink(Sink):
    """Writes one compact JSON object per line to *path* (or a file-like).

    Keys are sorted so traces diff cleanly between runs.  The file is
    line-buffered on flush/close, not per event, to keep emission cheap.
    """

    def __init__(self, path_or_file) -> None:
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns = False
            self.path = getattr(path_or_file, "name", "<stream>")
        else:
            self._file = open(path_or_file, "w")
            self._owns = True
            self.path = str(path_or_file)
        self.count = 0

    def emit(self, event: dict) -> None:
        self._file.write(json.dumps(event, sort_keys=True, default=str))
        self._file.write("\n")
        self.count += 1

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()

    def close(self) -> None:
        if self._owns and not self._file.closed:
            self._file.close()
        else:
            self.flush()


def read_trace(path) -> list[dict]:
    """Load a ``trace.jsonl`` file back into a list of event dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
