"""Structured tracing, metrics, and live progress (``repro.telemetry``).

The paper's methodology is profile-driven end to end: the search tests
hundreds of configurations per benchmark and prioritizes the descent by
execution counts.  This package makes that activity observable.  Every
hot layer of the reproduction — the search engine, the instrumentation
engine, the VM, and the MPI rank scheduler — reports what it does
through a :class:`Telemetry` object as a stream of structured *events*
plus aggregate *metrics*.

Design rules (see ``docs/OBSERVABILITY.md`` for the full schema):

* **Disabled is free.**  The default telemetry is a disabled singleton
  (:data:`NULL_TELEMETRY`); ``emit`` is a single attribute check and an
  immediate return, hot paths guard expensive field construction behind
  ``telemetry.enabled``, and the VM's deterministic cycle accounting is
  never touched — cycle counts are byte-identical with telemetry on or
  off.
* **Events are plain dicts**, one JSON object per line in a trace file
  (:class:`JsonlSink`), so traces are replayable with nothing but
  ``json.loads``.
* **Metrics ride the same stream.**  A :class:`MetricsRegistry` attached
  to the telemetry consumes every event it emits — including the
  ``metric.count``/``metric.observe`` events that carry direct counter
  updates — so the ``summary()`` table is a pure function of the trace:
  replaying a JSONL file (:func:`repro.telemetry.tools.replay_metrics`)
  reproduces it byte-for-byte.
"""

from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.events import EVENT_FIELDS, EVENT_KINDS, validate_event
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.progress import ProgressRenderer
from repro.telemetry.sinks import JsonlSink, ListSink, NullSink, Sink

__all__ = [
    "EVENT_FIELDS",
    "EVENT_KINDS",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullSink",
    "ProgressRenderer",
    "Sink",
    "Telemetry",
    "validate_event",
]
