"""Turning an analysis report into search guidance.

Two predicates over a set of instruction addresses (the instructions a
search queue item would flag single):

* :meth:`SearchGuide.replaceable_rank` — ranks items all of whose
  observed channel verdicts are "pass" ahead of everything else; the
  search adds it in front of the profile-count key, so
  predicted-replaceable items are evaluated (and usually confirmed)
  first.  A wrong "pass" costs nothing but ordering.
* :meth:`SearchGuide.predict_fail` — True exactly when the item is a
  *single* instruction whose channel verdict is "fail", so the search
  records the failure and descends without spending an evaluation.

Pruning is only sound if it never fires on an item that would have
passed — a false prune changes the final composed configuration (the
children get flagged instead of the parent).  Magnitude heuristics
cannot provide that: calibration over the NAS suite found passing
single-instruction configurations carrying local errors five orders of
magnitude above the verification bound next to failing ones far below
it, and fourteen failure-monotonicity violations (a group whose every
member fails alone, yet the group passes — and vice versa), which rules
out deriving *group* verdicts from leaf verdicts too.  The channel
verdict needs no margin: it is the bit-exact outcome of the singleton
run (:mod:`repro.analysis.channels`), verified by the workload's own
routine, and "unknown" — divergence the channel model could not follow
— always falls back to a real evaluation.  Differential tests assert
guided and unguided searches compose identical final configurations on
every NAS workload.
"""

from __future__ import annotations

from repro.analysis.report import VERDICT_FAIL, VERDICT_PASS


def verification_bound(workload) -> float:
    """The tightest relative tolerance the workload verifies against."""
    tolerances = getattr(workload, "tolerances", None)
    if tolerances:
        rels = [rel for rel, _abs in tolerances if rel > 0]
        if rels:
            return min(rels)
    rel = getattr(workload, "rel_tol", 0.0)
    return rel if rel and rel > 0 else 0.0


class SearchGuide:
    """Search-facing view of one :class:`AnalysisReport`."""

    def __init__(self, report, workload) -> None:
        self.report = report
        self.workload = workload
        self.bound = verification_bound(workload)

    # -- prioritization ----------------------------------------------------

    def replaceable_rank(self, addrs) -> int:
        """1 when every observed instruction's singleton channel passed
        (the item is likely to verify), else 0."""
        seen = False
        for ia in self.report.for_addrs(addrs):
            seen = True
            if ia.verdict != VERDICT_PASS:
                return 0
        return 1 if seen else 0

    # -- pruning -----------------------------------------------------------

    def predict_fail(self, addrs) -> bool:
        """True when the channel run already *decided* this item fails.

        Deliberately exact and deliberately narrow: only single-
        instruction items, and only the "fail" verdict — the channel
        mirrored that item's whole run, so the verdict is the
        evaluation's outcome, not a prediction.  Group items are never
        pruned (failure is not monotone across granularities), and
        "unknown" means "must evaluate", never "will pass".
        """
        if len(addrs) != 1:
            return False
        ia = self.report.get(addrs[0])
        return ia is not None and ia.verdict == VERDICT_FAIL

    # -- lattice width seeding ---------------------------------------------

    def predict_unfit(self, addrs, width) -> bool:
        """True when some observed instruction's value range cannot be
        represented at lattice *width* (a :class:`repro.lattice.Width`).

        This is the width-seeding predicate of the lattice descent: the
        shadow run records the smallest and largest magnitudes flowing
        through every candidate, and a site whose values overflow
        ``width.max_finite`` (or all land below ``width.min_normal``)
        would round to infinity/zero when narrowed — the descent skips
        the evaluation and descends structurally instead, exactly like
        a channel-predicted failure.  Unlike :meth:`predict_fail` this
        *is* a range heuristic (it fires on groups too); it only steers
        which lattice evaluations are spent, never whether an item
        enters the final configuration at the width it already
        verified.
        """
        from repro.lattice import fits_width

        for ia in self.report.for_addrs(addrs):
            if not fits_width(width, ia.min_abs, ia.max_abs):
                return True
        return False
