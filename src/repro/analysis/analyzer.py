"""Run the shadow-value analysis over one workload.

One observed execution of the *original* double-precision program —
same VM parameters the workload itself runs with — produces the full
:class:`~repro.analysis.report.AnalysisReport`.  Two observers ride the
same run: the statistics observer (value ranges, cancellations, float32
shadow errors) and the channel observer, which mirrors every
singleton-replacement run bit-exactly and turns each one into a
pass/fail/unknown *verdict* by replaying its diverged outputs through
the workload's own verification routine.  This is the "single
dynamic-analysis pass" that replaces many search evaluations: the run
costs roughly one instrumented evaluation, and its verdicts let the
search skip every singleton whose failure is already decided.
"""

from __future__ import annotations

from repro.analysis.channels import ChannelObserver
from repro.analysis.observer import ShadowObserver
from repro.analysis.report import (
    AnalysisReport,
    InstructionAnalysis,
    VERDICT_FAIL,
    VERDICT_PASS,
    VERDICT_UNKNOWN,
)
from repro.config.generator import build_tree
from repro.telemetry import NULL_TELEMETRY
from repro.vm.errors import VmTrap
from repro.vm.machine import ExecResult, run_program


class ChainedObserver:
    """Fan one VM observer hook out to several observers.

    Wrappers nest in reverse order: the first observer's wrapper ends up
    innermost (closest to the op closure).  Every observer sees the same
    architectural effects — none of them mutate VM state.
    """

    def __init__(self, *observers) -> None:
        self.observers = observers

    def wrap(self, vm, index: int, instr, addr: int, closure):
        wrapped = closure
        for obs in self.observers:
            w = obs.wrap(vm, index, instr, addr, wrapped)
            if w is not None:
                wrapped = w
        return wrapped if wrapped is not closure else None


def analyze(workload, telemetry=None, tree=None) -> AnalysisReport:
    """Shadow-execute *workload* once and build its analysis report.

    The workload's own VM parameters (stack, seed, step budget) are
    used, so the observed run is the exact run the search's baseline
    evaluation performs.  With *telemetry* attached the run is wrapped
    in an ``analysis.run`` span and the report totals land in the
    ``analysis.*`` counters.  *tree* (a pre-built
    :class:`repro.config.model.ProgramTree`) is accepted to avoid a
    rebuild when the caller — the search engine — already has one.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    name = getattr(workload, "name", workload.program.name)
    observer = ShadowObserver()
    channels = ChannelObserver()
    result = None
    with tel.span("analysis.run", workload=name):
        try:
            result = run_program(
                workload.program,
                observer=ChainedObserver(observer, channels),
                **getattr(workload, "vm_params", dict)(),
            )
        except VmTrap:
            # The original program should not trap; if it does the
            # partial statistics are still valid observations, but no
            # channel verdict can be trusted (the mirrored runs were cut
            # short with it).
            pass
        if tree is None:
            tree = build_tree(workload.program)
        instructions = {}
        for addr, st in observer.stats.items():
            node = tree.by_addr.get(addr)
            verdict, why = _verdict(workload, channels, addr, result)
            instructions[addr] = InstructionAnalysis(
                addr=addr,
                node_id=node.node_id if node is not None else "",
                mnemonic=st.mnemonic,
                execs=st.execs,
                min_abs=st.min_abs,
                max_abs=st.max_abs,
                cancel_events=st.cancel_events,
                cancel_max_bits=st.cancel_max_bits,
                max_local_err=st.max_local_err,
                max_shadow_err=st.max_shadow_err,
                overflow=st.overflow,
                underflow=st.underflow,
                flips=st.flips,
                verdict=verdict,
                verdict_why=why,
            )
        report = AnalysisReport(
            workload=name,
            program=workload.program.name,
            candidates=tree.candidate_count,
            observed=len(instructions),
            instructions=instructions,
        )
    if tel.enabled:
        tel.count("analysis.instructions", report.observed)
        tel.count(
            "analysis.cancellations",
            sum(ia.cancel_events for ia in instructions.values()),
        )
        tel.count(
            "analysis.flips", sum(ia.flips for ia in instructions.values())
        )
        tel.count(
            "analysis.overflows",
            sum(ia.overflow + ia.underflow for ia in instructions.values()),
        )
        for verdict in (VERDICT_PASS, VERDICT_FAIL, VERDICT_UNKNOWN):
            n = sum(
                1 for ia in instructions.values() if ia.verdict == verdict
            )
            if n:
                tel.count(f"analysis.verdict.{verdict}", n)
    return report


def _verdict(workload, channels: ChannelObserver, addr: int, result):
    """Exact singleton outcome for *addr*: substitute the channel's
    diverged output records into the baseline stream and run the
    workload's own verification."""
    if result is None:  # baseline trapped: no mirrored run completed
        return VERDICT_UNKNOWN, "baseline-trap"
    ch = channels.channels.get(addr)
    outs = channels.outputs_for(addr, result.outputs)
    if outs is None:
        why = ch.why if ch is not None and ch.why else "collective"
        return VERDICT_UNKNOWN, why
    fake = ExecResult(
        outputs=outs, cycles=result.cycles, steps=result.steps
    )
    return (VERDICT_PASS if workload.verify(fake) else VERDICT_FAIL), ""
