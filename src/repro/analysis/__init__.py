"""Shadow-value analysis: predict replaceability from one observed run.

The paper's search treats every candidate configuration as a black box
(one instrumented run each).  This subsystem — modeled on the authors'
follow-on CRAFT work — runs the workload *once* under a VM observer
hook and learns two kinds of things about every candidate instruction:

* **statistics** (:mod:`repro.analysis.observer`): value ranges,
  catastrophic-cancellation events, float32 range violations, and
  local/accumulated relative-error estimates from a side-by-side
  float32 shadow of every double value;
* **verdicts** (:mod:`repro.analysis.channels`): the bit-exact outcome
  of the singleton replacement — per candidate, a sparse mirror of the
  run where exactly that instruction is single, decided by the
  workload's own verification routine.

The resulting :class:`AnalysisReport` is keyed the same way as the
configuration tree, so the search can rank predicted-replaceable
candidates first and prune singletons whose failure the channel already
decided — without changing the final composed configuration.
"""

from repro.analysis.analyzer import ChainedObserver, analyze
from repro.analysis.channels import Channel, ChannelObserver
from repro.analysis.guide import SearchGuide, verification_bound
from repro.analysis.observer import (
    CANCEL_MIN_BITS,
    InstrStats,
    ShadowObserver,
)
from repro.analysis.report import AnalysisReport, InstructionAnalysis

__all__ = [
    "analyze",
    "AnalysisReport",
    "InstructionAnalysis",
    "ShadowObserver",
    "InstrStats",
    "Channel",
    "ChannelObserver",
    "ChainedObserver",
    "SearchGuide",
    "verification_bound",
    "CANCEL_MIN_BITS",
]
