"""The shadow-value execution observer.

Plugs into the VM's observer hook (``VM(observer=...)``): for every
double-precision replacement candidate the observer installs a wrapper
closure that watches one execution of the instruction — reading its
operands just before the original closure runs and its result just
after — without touching any architectural state.  Outputs, cycle
counts, step counts and trap addresses are bit-identical with the
observer attached or not (tests/vm/test_observer_parity.py).

Per instruction the observer maintains:

* **value ranges** — min/max magnitude over every operand and result;
* **cancellation events** — on ADDSD/SUBSD, the exponent drop from the
  larger operand to the result (a drop of *k* bits means the top *k*
  bits of both operands annihilated, so roughly ``k`` bits of any input
  rounding error are promoted into the result's leading digits);
* a **float32 shadow** of each value — a side-by-side single-precision
  state propagated through moves, loads, stores and arithmetic — from
  which it derives two relative-error estimates per instruction:
  ``local`` (inputs rounded to float32 once, then the float32 op —
  exactly what an in-place replacement of this one instruction
  computes) and ``shadow`` (inputs taken from the propagated shadow
  state — what a whole-region replacement accumulates).

Shadow propagation covers MOVSD/MOVAPD (all forms), PUSHX/POPX and
CVTSS2SD; any write the model does not track (raw integer stores, MOVSS
and friends, bit-level register transfers) *invalidates* the shadow of
the destination, and a missing shadow falls back to rounding the actual
double — so the shadow state never goes stale, it only loses history.
"""

from __future__ import annotations

import math

from repro.fpbits import ieee
from repro.fpbits.ieee import bits_to_double, bits_to_single, single_to_bits
from repro.isa.opcodes import Op
from repro.isa.operands import Mem, Xmm

_M32 = 0xFFFFFFFF
_EXP_MASK = 0x7FF

#: float32 representable-magnitude limits (normal range).
F32_MAX = 3.4028234663852886e38
F32_MIN_NORMAL = 1.1754943508222875e-38

#: exponent drops below this many bits are ordinary rounding noise, not
#: catastrophic cancellation (float32 keeps 24 significand bits, so a
#: drop has to eat a meaningful fraction of them to matter).
CANCEL_MIN_BITS = 10

# float32 equivalents of the scalar-double arithmetic ops.
_F32_BIN = {
    Op.ADDSD: ieee.single_add,
    Op.SUBSD: ieee.single_sub,
    Op.MULSD: ieee.single_mul,
    Op.DIVSD: ieee.single_div,
    Op.MINSD: ieee.single_min,
    Op.MAXSD: ieee.single_max,
    Op.ADDPD: ieee.single_add,
    Op.SUBPD: ieee.single_sub,
    Op.MULPD: ieee.single_mul,
    Op.DIVPD: ieee.single_div,
}
_F32_UN = {
    Op.SQRTSD: ieee.single_sqrt,
    Op.ABSSD: ieee.single_abs,
    Op.NEGSD: ieee.single_neg,
    Op.SINSD: ieee.single_sin,
    Op.COSSD: ieee.single_cos,
    Op.EXPSD: ieee.single_exp,
    Op.LOGSD: ieee.single_log,
    Op.SQRTPD: ieee.single_sqrt,
}

_SCALAR_BIN = frozenset(
    (Op.ADDSD, Op.SUBSD, Op.MULSD, Op.DIVSD, Op.MINSD, Op.MAXSD)
)
_SCALAR_UN = frozenset(
    (Op.SQRTSD, Op.ABSSD, Op.NEGSD, Op.SINSD, Op.COSSD, Op.EXPSD, Op.LOGSD)
)
_PACKED_BIN = frozenset((Op.ADDPD, Op.SUBPD, Op.MULPD, Op.DIVPD))

#: lo-lane invalidators: ops that write an xmm low lane in a way the
#: shadow model does not track.
_INVAL_LO = frozenset(
    (
        Op.MOVQXR,
        Op.CVTSD2SS,
        Op.CVTSI2SS,
        Op.ADDSS, Op.SUBSS, Op.MULSS, Op.DIVSS, Op.MINSS, Op.MAXSS,
        Op.SQRTSS, Op.ABSSS, Op.NEGSS, Op.SINSS, Op.COSSS,
        Op.EXPSS, Op.LOGSS,
        Op.CVTTSS2SI,  # writes gpr only, listed defensively; wrap skips it
    )
)
_INVAL_BOTH = frozenset(
    (Op.ADDPS, Op.SUBPS, Op.MULPS, Op.DIVPS, Op.SQRTPS)
)


def _round32(bits64: int) -> int:
    """float32 bit pattern nearest to the double behind *bits64*."""
    return single_to_bits(bits_to_double(bits64))


def _exponent(bits64: int) -> int:
    return (bits64 >> 52) & _EXP_MASK


class InstrStats:
    """Running per-instruction statistics (one per observed address)."""

    __slots__ = (
        "mnemonic",
        "execs",
        "min_abs",
        "max_abs",
        "cancel_events",
        "cancel_max_bits",
        "max_local_err",
        "max_shadow_err",
        "overflow",
        "underflow",
        "flips",
    )

    def __init__(self, mnemonic: str) -> None:
        self.mnemonic = mnemonic
        self.execs = 0
        self.min_abs = math.inf   # smallest nonzero magnitude seen
        self.max_abs = 0.0
        self.cancel_events = 0
        self.cancel_max_bits = 0
        self.max_local_err = 0.0
        self.max_shadow_err = 0.0
        self.overflow = 0         # result magnitude above float32 range
        self.underflow = 0        # nonzero result below float32 normals
        self.flips = 0            # compare/convert decided differently in f32

    # -- updates (hot path: called once per observed execution) ----------

    def see(self, value: float) -> None:
        mag = abs(value)
        if mag != mag or mag == math.inf:
            return
        if mag != 0.0:
            if mag < self.min_abs:
                self.min_abs = mag
            if mag > self.max_abs:
                self.max_abs = mag

    def result(self, value: float) -> None:
        self.see(value)
        mag = abs(value)
        if mag == mag:  # not NaN
            if mag > F32_MAX:
                self.overflow += 1
            elif 0.0 < mag < F32_MIN_NORMAL:
                self.underflow += 1

    def error(self, actual: float, local32: float, shadow32: float) -> None:
        if actual != actual:  # NaN result: nothing meaningful to compare
            return
        if actual == 0.0:
            local = 0.0 if local32 == 0.0 else math.inf
            shadow = 0.0 if shadow32 == 0.0 else math.inf
        else:
            scale = abs(actual)
            local = (
                math.inf if local32 != local32 else abs(local32 - actual) / scale
            )
            shadow = (
                math.inf if shadow32 != shadow32 else abs(shadow32 - actual) / scale
            )
        if local > self.max_local_err:
            self.max_local_err = local
        if shadow > self.max_shadow_err:
            self.max_shadow_err = shadow

    def cancellation(self, ea: int, eb: int, result_bits: int) -> None:
        er = _exponent(result_bits)
        if er == _EXP_MASK:
            return  # inf/NaN result: overflow accounting covers it
        top = ea if ea >= eb else eb
        if result_bits & 0x7FFFFFFFFFFFFFFF == 0:
            drop = 53 if top else 0  # total annihilation of nonzero inputs
        else:
            drop = top - er
        if drop >= CANCEL_MIN_BITS:
            self.cancel_events += 1
            if drop > self.cancel_max_bits:
                self.cancel_max_bits = drop


class ShadowObserver:
    """VM observer computing the shadow-value analysis of one run.

    Use via ``VM(program, observer=ShadowObserver())`` or
    ``run_program(..., observer=obs)``; after the run, ``obs.stats``
    maps text address -> :class:`InstrStats` for every observed
    double-precision candidate instruction that executed.
    """

    def __init__(self) -> None:
        self.stats: dict[int, InstrStats] = {}
        # float32 shadow state: xmm lanes and memory words carrying a
        # single-precision bit pattern mirroring the double they hold.
        self._sreg: dict[int, int] = {}
        self._sreg_hi: dict[int, int] = {}
        self._smem: dict[int, int] = {}

    # -- helpers ----------------------------------------------------------

    def _stat(self, addr: int, mnemonic: str) -> InstrStats:
        st = self.stats.get(addr)
        if st is None:
            st = self.stats[addr] = InstrStats(mnemonic)
        return st

    # -- the hook ---------------------------------------------------------

    def wrap(self, vm, index: int, instr, addr: int, closure):
        """Return a wrapper closure for *instr*, or None to leave it be."""
        op = instr.opcode
        if op in _SCALAR_BIN:
            return self._wrap_scalar_bin(vm, instr, addr, closure)
        if op in _SCALAR_UN:
            return self._wrap_scalar_un(vm, instr, addr, closure)
        if op in _PACKED_BIN or op is Op.SQRTPD:
            return self._wrap_packed(vm, instr, addr, closure)
        if op is Op.UCOMISD:
            return self._wrap_ucomisd(vm, instr, addr, closure)
        if op is Op.CVTSI2SD:
            return self._wrap_cvtsi2sd(vm, instr, addr, closure)
        if op is Op.CVTTSD2SI:
            return self._wrap_cvttsd2si(vm, instr, addr, closure)
        # -- shadow propagation (not candidates, but they carry values) --
        if op is Op.MOVSD:
            return self._wrap_movsd(vm, instr, closure)
        if op is Op.MOVAPD:
            return self._wrap_movapd(vm, instr, closure)
        if op is Op.PUSHX:
            return self._wrap_pushx(vm, instr, closure)
        if op is Op.POPX:
            return self._wrap_popx(vm, instr, closure)
        if op is Op.CVTSS2SD:
            return self._wrap_cvtss2sd(vm, instr, closure)
        # -- shadow invalidation (untracked writers) ---------------------
        if op in _INVAL_LO:
            d = instr.operands[0]
            if isinstance(d, Xmm):
                return self._wrap_inval_reg(d.index, closure, both=False)
            return None
        if op in _INVAL_BOTH:
            return self._wrap_inval_reg(instr.operands[0].index, closure, both=True)
        if op is Op.MOVSS:
            return self._wrap_movss(vm, instr, closure)
        if op is Op.PINSR:
            lane = instr.operands[2].value
            shadow = self._sreg if lane == 0 else self._sreg_hi
            x = instr.operands[0].index

            def w_pinsr(idx):
                nxt = closure(idx)
                shadow.pop(x, None)
                return nxt

            return w_pinsr
        if op is Op.MOV and isinstance(instr.operands[0], Mem):
            return self._wrap_store_inval(vm, instr.operands[0], closure)
        if op is Op.PUSH or op is Op.CALL:
            gpr = vm.gpr
            smem = self._smem

            def w_push(idx):
                nxt = closure(idx)
                smem.pop(gpr[15], None)
                return nxt

            return w_push
        return None

    # -- memory access helpers -------------------------------------------

    def _mem_reader(self, vm, m: Mem):
        """(addr, bits) reader for a Mem operand; None when out of bounds
        (the wrapper then skips observation and lets the original closure
        raise the trap, preserving the trap address)."""
        addrf = vm._addr_fn(m)
        mem = vm.mem
        top = len(mem)

        def read():
            a = addrf()
            if 0 <= a < top:
                return a, mem[a]
            return None

        return read

    # -- arithmetic wrappers ---------------------------------------------

    def _wrap_scalar_bin(self, vm, instr, addr, closure):
        op = instr.opcode
        fn32 = _F32_BIN[op]
        cancels = op is Op.ADDSD or op is Op.SUBSD
        st = self._stat(addr, instr.info.mnemonic)
        xl = vm.xmm_lo
        sreg = self._sreg
        smem = self._smem
        d = instr.operands[0].index
        src = instr.operands[1]
        if isinstance(src, Xmm):
            s = src.index

            def w_bin_xx(idx):
                a = xl[d]
                b = xl[s]
                sa = sreg.get(d)
                sb = sreg.get(s)
                nxt = closure(idx)
                self._record_bin(
                    st, fn32, cancels, a, b, sa, sb, xl[d], sreg, d
                )
                return nxt

            return w_bin_xx
        read = self._mem_reader(vm, src)

        def w_bin_xm(idx):
            loc = read()
            if loc is None:
                return closure(idx)  # out-of-bounds: the closure traps
            ma, b = loc
            a = xl[d]
            sa = sreg.get(d)
            sb = smem.get(ma)
            nxt = closure(idx)
            self._record_bin(st, fn32, cancels, a, b, sa, sb, xl[d], sreg, d)
            return nxt

        return w_bin_xm

    def _record_bin(self, st, fn32, cancels, a, b, sa, sb, r, sreg, d):
        st.execs += 1
        fa = bits_to_double(a)
        fb = bits_to_double(b)
        fr = bits_to_double(r)
        st.see(fa)
        st.see(fb)
        st.result(fr)
        if cancels and fa == fa and fb == fb and (fa or fb):
            st.cancellation(_exponent(a), _exponent(b), r)
        ra = _round32(a)
        rb = _round32(b)
        local = fn32(ra, rb)
        shadow = fn32(sa if sa is not None else ra, sb if sb is not None else rb)
        sreg[d] = shadow
        st.error(fr, bits_to_single(local), bits_to_single(shadow))

    def _wrap_scalar_un(self, vm, instr, addr, closure):
        fn32 = _F32_UN[instr.opcode]
        st = self._stat(addr, instr.info.mnemonic)
        xl = vm.xmm_lo
        sreg = self._sreg
        smem = self._smem
        d = instr.operands[0].index
        src = instr.operands[1]
        if isinstance(src, Xmm):
            s = src.index

            def w_un_x(idx):
                a = xl[s]
                sa = sreg.get(s)
                nxt = closure(idx)
                self._record_un(st, fn32, a, sa, xl[d], sreg, d)
                return nxt

            return w_un_x
        read = self._mem_reader(vm, src)

        def w_un_m(idx):
            loc = read()
            if loc is None:
                return closure(idx)
            ma, a = loc
            sa = smem.get(ma)
            nxt = closure(idx)
            self._record_un(st, fn32, a, sa, xl[d], sreg, d)
            return nxt

        return w_un_m

    def _record_un(self, st, fn32, a, sa, r, sreg, d):
        st.execs += 1
        fa = bits_to_double(a)
        fr = bits_to_double(r)
        st.see(fa)
        st.result(fr)
        ra = _round32(a)
        local = fn32(ra)
        shadow = fn32(sa if sa is not None else ra)
        sreg[d] = shadow
        st.error(fr, bits_to_single(local), bits_to_single(shadow))

    def _wrap_packed(self, vm, instr, addr, closure):
        op = instr.opcode
        unary = op is Op.SQRTPD
        fn32 = _F32_UN[op] if unary else _F32_BIN[op]
        cancels = op is Op.ADDPD or op is Op.SUBPD
        st = self._stat(addr, instr.info.mnemonic)
        xl, xh = vm.xmm_lo, vm.xmm_hi
        sreg, sreg_hi, smem = self._sreg, self._sreg_hi, self._smem
        d = instr.operands[0].index
        src = instr.operands[1]
        if isinstance(src, Xmm):
            s = src.index

            def read2():
                return (xl[s], xh[s], sreg.get(s), sreg_hi.get(s))

        else:
            addrf = vm._addr_fn(src)
            mem = vm.mem
            top = len(mem)

            def read2():
                a = addrf()
                if 0 <= a and a + 1 < top:
                    return (mem[a], mem[a + 1], smem.get(a), smem.get(a + 1))
                return None

        def w_packed(idx):
            loc = read2()
            if loc is None:
                return closure(idx)
            blo, bhi, sblo, sbhi = loc
            alo, ahi = xl[d], xh[d]
            salo, sahi = sreg.get(d), sreg_hi.get(d)
            nxt = closure(idx)
            st.execs += 1
            if unary:
                self._lane_un(st, fn32, blo, sblo, xl[d], sreg, d)
                self._lane_un(st, fn32, bhi, sbhi, xh[d], sreg_hi, d)
            else:
                self._lane_bin(
                    st, fn32, cancels, alo, blo, salo, sblo, xl[d], sreg, d
                )
                self._lane_bin(
                    st, fn32, cancels, ahi, bhi, sahi, sbhi, xh[d], sreg_hi, d
                )
            return nxt

        return w_packed

    def _lane_bin(self, st, fn32, cancels, a, b, sa, sb, r, shadow, d):
        fa = bits_to_double(a)
        fb = bits_to_double(b)
        fr = bits_to_double(r)
        st.see(fa)
        st.see(fb)
        st.result(fr)
        if cancels and fa == fa and fb == fb and (fa or fb):
            st.cancellation(_exponent(a), _exponent(b), r)
        ra = _round32(a)
        rb = _round32(b)
        local = fn32(ra, rb)
        sh = fn32(sa if sa is not None else ra, sb if sb is not None else rb)
        shadow[d] = sh
        st.error(fr, bits_to_single(local), bits_to_single(sh))

    def _lane_un(self, st, fn32, a, sa, r, shadow, d):
        fa = bits_to_double(a)
        fr = bits_to_double(r)
        st.see(fa)
        st.result(fr)
        ra = _round32(a)
        local = fn32(ra)
        sh = fn32(sa if sa is not None else ra)
        shadow[d] = sh
        st.error(fr, bits_to_single(local), bits_to_single(sh))

    # -- compare / convert wrappers --------------------------------------

    def _wrap_ucomisd(self, vm, instr, addr, closure):
        st = self._stat(addr, instr.info.mnemonic)
        xl = vm.xmm_lo
        sreg, smem = self._sreg, self._smem
        d = instr.operands[0].index
        src = instr.operands[1]
        if isinstance(src, Xmm):
            s = src.index

            def readb():
                return xl[s], sreg.get(s)

        else:
            mread = self._mem_reader(vm, src)

            def readb():
                loc = mread()
                if loc is None:
                    return None
                ma, b = loc
                return b, smem.get(ma)

        def w_ucomisd(idx):
            loc = readb()
            if loc is None:
                return closure(idx)
            b, sb = loc
            a = xl[d]
            sa = sreg.get(d)
            nxt = closure(idx)
            st.execs += 1
            fa = bits_to_double(a)
            fb = bits_to_double(b)
            st.see(fa)
            st.see(fb)
            ga = bits_to_single(sa if sa is not None else _round32(a))
            gb = bits_to_single(sb if sb is not None else _round32(b))
            # Same three-way relation the VM derives flags from: a
            # float32 replacement that orders the operands differently
            # steers branches down another path.
            if _relation(fa, fb) != _relation(ga, gb):
                st.flips += 1
            return nxt

        return w_ucomisd

    def _wrap_cvtsi2sd(self, vm, instr, addr, closure):
        st = self._stat(addr, instr.info.mnemonic)
        xl, gpr = vm.xmm_lo, vm.gpr
        sreg = self._sreg
        d = instr.operands[0].index
        s = instr.operands[1].index

        def w_cvtsi2sd(idx):
            v = gpr[s]
            nxt = closure(idx)
            st.execs += 1
            fr = bits_to_double(xl[d])
            st.result(fr)
            sh = single_to_bits(float(v - 0x10000000000000000 if v >> 63 else v))
            sreg[d] = sh
            f32 = bits_to_single(sh)
            st.error(fr, f32, f32)
            return nxt

        return w_cvtsi2sd

    def _wrap_cvttsd2si(self, vm, instr, addr, closure):
        st = self._stat(addr, instr.info.mnemonic)
        xl = vm.xmm_lo
        sreg = self._sreg
        s = instr.operands[1].index

        def w_cvttsd2si(idx):
            a = xl[s]
            sa = sreg.get(s)
            nxt = closure(idx)
            st.execs += 1
            fa = bits_to_double(a)
            st.see(fa)
            fs = bits_to_single(sa if sa is not None else _round32(a))
            if _trunc(fa) != _trunc(fs):
                st.flips += 1  # the float32 path yields a different integer
            return nxt

        return w_cvttsd2si

    # -- propagation wrappers --------------------------------------------

    def _wrap_movsd(self, vm, instr, closure):
        sreg, sreg_hi, smem = self._sreg, self._sreg_hi, self._smem
        dst, src = instr.operands
        if isinstance(dst, Xmm):
            d = dst.index
            if isinstance(src, Xmm):
                s = src.index

                def w_movsd_xx(idx):
                    nxt = closure(idx)
                    sh = sreg.get(s)
                    if sh is None:
                        sreg.pop(d, None)
                    else:
                        sreg[d] = sh
                    return nxt

                return w_movsd_xx
            read = self._mem_reader(vm, src)

            def w_movsd_xm(idx):
                loc = read()
                if loc is None:
                    return closure(idx)
                ma, _bits = loc
                nxt = closure(idx)
                sh = smem.get(ma)
                if sh is None:
                    sreg.pop(d, None)
                else:
                    sreg[d] = sh
                sreg_hi[d] = 0  # the closure zeroed the high lane
                return nxt

            return w_movsd_xm
        s = src.index
        addrf = vm._addr_fn(dst)
        top = len(vm.mem)

        def w_movsd_mx(idx):
            a = addrf()
            nxt = closure(idx)  # performs the bounds check itself
            if 0 <= a < top:
                sh = sreg.get(s)
                if sh is None:
                    smem.pop(a, None)
                else:
                    smem[a] = sh
            return nxt

        return w_movsd_mx

    def _wrap_movapd(self, vm, instr, closure):
        sreg, sreg_hi, smem = self._sreg, self._sreg_hi, self._smem
        dst, src = instr.operands
        if isinstance(dst, Xmm):
            d = dst.index
            if isinstance(src, Xmm):
                s = src.index

                def w_movapd_xx(idx):
                    nxt = closure(idx)
                    _copy_shadow(sreg, s, sreg, d)
                    _copy_shadow(sreg_hi, s, sreg_hi, d)
                    return nxt

                return w_movapd_xx
            addrf = vm._addr_fn(src)
            top = len(vm.mem)

            def w_movapd_xm(idx):
                a = addrf()
                if not (0 <= a and a + 1 < top):
                    return closure(idx)
                nxt = closure(idx)
                _copy_shadow(smem, a, sreg, d)
                _copy_shadow(smem, a + 1, sreg_hi, d)
                return nxt

            return w_movapd_xm
        s = src.index
        addrf = vm._addr_fn(dst)
        top = len(vm.mem)

        def w_movapd_mx(idx):
            a = addrf()
            nxt = closure(idx)
            if 0 <= a and a + 1 < top:
                _copy_shadow(sreg, s, smem, a)
                _copy_shadow(sreg_hi, s, smem, a + 1)
            return nxt

        return w_movapd_mx

    def _wrap_pushx(self, vm, instr, closure):
        sreg, sreg_hi, smem = self._sreg, self._sreg_hi, self._smem
        gpr = vm.gpr
        x = instr.operands[0].index

        def w_pushx(idx):
            nxt = closure(idx)
            sp = gpr[15]  # the closure just wrote xl/xh at sp, sp+1
            _copy_shadow(sreg, x, smem, sp)
            _copy_shadow(sreg_hi, x, smem, sp + 1)
            return nxt

        return w_pushx

    def _wrap_popx(self, vm, instr, closure):
        sreg, sreg_hi, smem = self._sreg, self._sreg_hi, self._smem
        gpr = vm.gpr
        x = instr.operands[0].index

        def w_popx(idx):
            sp = gpr[15]
            nxt = closure(idx)
            _copy_shadow(smem, sp, sreg, x)
            _copy_shadow(smem, sp + 1, sreg_hi, x)
            return nxt

        return w_popx

    def _wrap_cvtss2sd(self, vm, instr, closure):
        xl = vm.xmm_lo
        sreg = self._sreg
        d = instr.operands[0].index
        s = instr.operands[1].index

        def w_cvtss2sd(idx):
            low = xl[s] & _M32  # already a float32 pattern: exact shadow
            nxt = closure(idx)
            sreg[d] = low
            return nxt

        return w_cvtss2sd

    # -- invalidation wrappers -------------------------------------------

    def _wrap_inval_reg(self, d, closure, both):
        sreg, sreg_hi = self._sreg, self._sreg_hi

        def w_inval(idx):
            nxt = closure(idx)
            sreg.pop(d, None)
            if both:
                sreg_hi.pop(d, None)
            return nxt

        return w_inval

    def _wrap_movss(self, vm, instr, closure):
        dst, src = instr.operands
        if isinstance(dst, Xmm):
            if isinstance(src, Mem):
                # the load form zeroes the high lane as well
                d = dst.index
                sreg, sreg_hi = self._sreg, self._sreg_hi

                def w_movss_xm(idx):
                    nxt = closure(idx)
                    sreg.pop(d, None)
                    sreg_hi[d] = 0
                    return nxt

                return w_movss_xm
            return self._wrap_inval_reg(dst.index, closure, both=False)
        return self._wrap_store_inval(vm, dst, closure)

    def _wrap_store_inval(self, vm, dst: Mem, closure):
        smem = self._smem
        addrf = vm._addr_fn(dst)

        def w_store(idx):
            a = addrf()
            nxt = closure(idx)
            smem.pop(a, None)
            return nxt

        return w_store


def _copy_shadow(src: dict, s, dst: dict, d) -> None:
    sh = src.get(s)
    if sh is None:
        dst.pop(d, None)
    else:
        dst[d] = sh


def _relation(a: float, b: float) -> int:
    """Three-way FP relation as the VM's compare derives flags: 0 equal,
    1 less, 2 greater, 3 unordered."""
    if a != a or b != b:
        return 3
    if a == b:
        return 0
    return 1 if a < b else 2


def _trunc(v: float) -> int:
    """CVTTSD2SI semantics shared by the double and float32 paths."""
    if v != v or v >= 9.223372036854776e18 or v < -9.223372036854776e18:
        return -(1 << 63)  # integer indefinite
    return int(v)
