"""Per-instruction shadow channels: exact singleton-replacement verdicts.

Magnitude heuristics cannot decide replaceability: over the NAS suite
there are single-instruction configurations that *pass* verification
while carrying the largest local error of the whole suite, and ones
that *fail* with errors below the verification bound (the recurrence
structure of the benchmark, not the size of any one rounding error,
decides the outcome).  Pruning from per-instruction error statistics is
therefore unsound at every threshold.

This module instead *simulates* the instrumented runs themselves.  One
observed execution of the original program maintains, per candidate
instruction ``c``, a **channel**: a sparse, bit-exact mirror of the run
the search would perform for the configuration "only ``c`` is single".
A channel stores just the 64-bit *differences* from the observed
baseline — per XMM lane, per general-purpose register, per memory word
— plus the output records that differ.  The mirrored semantics are
exactly those of the instrumentation snippets (paper Section 2.3):

* at ``c`` itself: operands are downcast in place to flagged
  single-in-double slots (``0x7FF4DEAD`` sentinel) unless already
  flagged, the single-precision opcode runs, and the result carries the
  sentinel — :func:`repro.fpbits.replace.downcast_in_place` is the same
  bit function the snippet's CVTSD2SS+flag sequence computes;
* at every *other* candidate: the double-precision guard — flagged
  register operands are upcast in place, memory operands are read
  through a scratch copy (memory stays flagged), then the double opcode
  runs;
* everywhere else: the program's own bit semantics.  Data *transport*
  preserves divergence exactly: moves, loads, stores, push/pop and the
  ``movqrx``/``movqxr`` bit transfers the compiler's calling convention
  uses to pass floating-point arguments through integer registers and
  stack slots.

Divergence may flow through transports, but the moment it would alter
*behavior* the simulation cannot follow — integer arithmetic or
comparison on a diverged register, an address computed from one, a
three-way FP compare whose relation differs from the baseline (the
instrumented run would branch differently), a float-to-int conversion
producing a different integer — the channel is marked **unknown** and
never yields a verdict.  Unknown is always sound: it costs an
evaluation, never a wrong prune.

After the run, substituting a channel's output overrides into the
baseline output stream and running the workload's own verification
routine gives the exact pass/fail outcome of that singleton
configuration — the foundation of the search guide's pruning
(:mod:`repro.analysis.guide`).
"""

from __future__ import annotations

from repro.fpbits import ieee
from repro.fpbits.ieee import (
    bits_to_double,
    bits_to_single,
    double_to_bits,
    single_to_bits,
)
from repro.fpbits.replace import (
    REPLACED_FLAG_SHIFTED,
    downcast_in_place,
    upcast_in_place,
)
from repro.isa.opcodes import OPCODE_INFO, Op
from repro.isa.operands import Imm, Mem, Reg, Xmm

_M32 = 0xFFFFFFFF

# Location space: one int per tracked 64-bit slot.  XMM low lanes are
# 0..15, XMM high lanes 16..31, GPRs 32..47, memory word *a* is 48 + a.
_XH = 16
_GPR = 32
_MEM = 48

# Candidate scalar arithmetic: the double semantics the guard runs and
# the single semantics the replacement runs (same tables as the VM).
_F64_BIN = {
    Op.ADDSD: ieee.double_add,
    Op.SUBSD: ieee.double_sub,
    Op.MULSD: ieee.double_mul,
    Op.DIVSD: ieee.double_div,
    Op.MINSD: ieee.double_min,
    Op.MAXSD: ieee.double_max,
}
_F64_UN = {
    Op.SQRTSD: ieee.double_sqrt,
    Op.ABSSD: ieee.double_abs,
    Op.NEGSD: ieee.double_neg,
    Op.SINSD: ieee.double_sin,
    Op.COSSD: ieee.double_cos,
    Op.EXPSD: ieee.double_exp,
    Op.LOGSD: ieee.double_log,
}
_F32_BIN = {
    Op.ADDSD: ieee.single_add,
    Op.SUBSD: ieee.single_sub,
    Op.MULSD: ieee.single_mul,
    Op.DIVSD: ieee.single_div,
    Op.MINSD: ieee.single_min,
    Op.MAXSD: ieee.single_max,
}
_F32_UN = {
    Op.SQRTSD: ieee.single_sqrt,
    Op.ABSSD: ieee.single_abs,
    Op.NEGSD: ieee.single_neg,
    Op.SINSD: ieee.single_sin,
    Op.COSSD: ieee.single_cos,
    Op.EXPSD: ieee.single_exp,
    Op.LOGSD: ieee.single_log,
}

#: integer ops computing on their operands: a diverged input register or
#: memory word changes the result, which the model does not follow.
_INT_COMPUTE = frozenset(
    (
        Op.ADD, Op.SUB, Op.IMUL, Op.AND, Op.OR, Op.XOR,
        Op.SHL, Op.SHR, Op.SAR, Op.IDIV, Op.IREM, Op.CMP, Op.TEST,
        Op.NOT, Op.NEG, Op.INC, Op.DEC,
    )
)

#: collectives: no-ops at one rank, out of model beyond.
_MPI_OPS = frozenset(
    (
        Op.ALLRED, Op.ALLREDSS, Op.ALLREDV, Op.ALLREDVSS,
        Op.BARRIER, Op.BCASTSD,
    )
)

#: ops that cannot carry or consume divergence at all.
_NEUTRAL = frozenset(
    (
        Op.HALT, Op.NOP, Op.JMP, Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG,
        Op.JGE, Op.JP, Op.JNP,
    )
)


class Channel:
    """Sparse mirror of the run where exactly one instruction is single."""

    __slots__ = ("addr", "diffs", "out", "unknown", "why")

    def __init__(self, addr: int) -> None:
        self.addr = addr
        self.diffs: dict[int, int] = {}   # location -> channel's 64-bit value
        self.out: dict[int, tuple] = {}   # output index -> overriding record
        self.unknown = False
        self.why = ""                     # why the verdict was lost


def _relation(a: float, b: float) -> int:
    """Three-way FP relation as the VM's compare derives flags."""
    if a != a or b != b:
        return 3
    if a == b:
        return 0
    return 1 if a < b else 2


def _trunc(v: float) -> int:
    """CVTTSD2SI / CVTTSS2SI truncation semantics."""
    if v != v or v >= 9.223372036854776e18 or v < -9.223372036854776e18:
        return -(1 << 63)
    return int(v)


def _mem_gpr_locs(m: Mem) -> tuple:
    """GPR locations an address computation reads."""
    locs = []
    if m.base is not None:
        locs.append(_GPR + m.base)
    if m.index is not None:
        locs.append(_GPR + m.index)
    return tuple(locs)


class ChannelObserver:
    """VM observer running every singleton-replacement channel at once.

    Attach via ``run_program(..., observer=ChannelObserver())`` (or
    chained behind the statistics observer, as :func:`repro.analysis.
    analyzer.analyze` does).  Architectural state is never touched;
    outputs, cycles and traps are bit-identical with or without the
    observer.  After the run:

    * ``channels`` maps candidate text address -> :class:`Channel`;
    * :meth:`outputs_for` yields the exact output stream of that
      address's singleton run (or None when the channel is unknown).
    """

    def __init__(self) -> None:
        self.channels: dict[int, Channel] = {}
        #: location -> set of channels diverged at that location
        self.rev: dict[int, set] = {}
        #: True once an unmodeled global effect (multi-rank collective)
        #: invalidated every verdict, past and future.
        self.tainted = False
        self._out_n = 0

    # -- channel state maintenance ---------------------------------------

    def _channel(self, addr: int) -> Channel:
        ch = self.channels.get(addr)
        if ch is None:
            ch = self.channels[addr] = Channel(addr)
        return ch

    def _set(self, ch: Channel, loc: int, bits: int, base: int) -> None:
        """Record that *ch* holds *bits* at *loc* where the baseline holds
        *base* (a matching value removes any existing divergence)."""
        if bits == base:
            if ch.diffs.pop(loc, None) is not None:
                s = self.rev.get(loc)
                if s:
                    s.discard(ch)
        else:
            if loc not in ch.diffs:
                self.rev.setdefault(loc, set()).add(ch)
            ch.diffs[loc] = bits

    def _clear(self, loc: int) -> None:
        """The baseline overwrote *loc* with a value every channel shares."""
        s = self.rev.pop(loc, None)
        if s:
            for ch in s:
                ch.diffs.pop(loc, None)

    def _kill(self, ch: Channel, why: str) -> None:
        """Divergence escaped the model: no verdict for this channel."""
        rev = self.rev
        for loc in ch.diffs:
            s = rev.get(loc)
            if s:
                s.discard(ch)
        ch.diffs.clear()
        ch.out.clear()
        ch.unknown = True
        ch.why = why

    def _kill_at(self, loc: int, why: str) -> None:
        s = self.rev.get(loc)
        if s:
            for ch in tuple(s):
                self._kill(ch, why)

    def _move(self, src_loc: int, dst_loc: int, base_src: int,
              base_dst_after: int) -> None:
        """Bit transport from *src_loc* into *dst_loc* for every channel
        diverged at either location."""
        rev = self.rev
        ss = rev.get(src_loc)
        sd = rev.get(dst_loc)
        if not ss and not sd:
            return
        aff = set(ss) if ss else set()
        if sd:
            aff |= sd
        _set = self._set
        for ch in aff:
            _set(
                ch, dst_loc, ch.diffs.get(src_loc, base_src), base_dst_after
            )

    def _touched(self, *locs: int):
        """Channels diverged at any of *locs* (empty tuple when none)."""
        rev = self.rev
        out = None
        for loc in locs:
            s = rev.get(loc)
            if s:
                out = set(s) if out is None else out | s
        return out if out is not None else ()

    # -- results ----------------------------------------------------------

    def outputs_for(self, addr: int, baseline_outputs: list) -> list | None:
        """The singleton run's raw output records, or None if unknown."""
        if self.tainted:
            return None
        ch = self.channels.get(addr)
        if ch is None:
            return list(baseline_outputs)
        if ch.unknown:
            return None
        if not ch.out:
            return list(baseline_outputs)
        outs = list(baseline_outputs)
        for i, rec in ch.out.items():
            outs[i] = rec
        return outs

    # -- the hook ----------------------------------------------------------

    def wrap(self, vm, index: int, instr, addr: int, closure):
        """Return a wrapper closure for *instr*, or None to leave it be."""
        op = instr.opcode
        if op in _NEUTRAL:
            return None
        if op in _F64_BIN:
            return self._wrap_scalar_bin(vm, instr, addr, closure)
        if op in _F64_UN:
            return self._wrap_scalar_un(vm, instr, addr, closure)
        if op is Op.UCOMISD:
            return self._wrap_ucomisd(vm, instr, addr, closure)
        if op is Op.CVTSI2SD:
            return self._wrap_cvtsi2sd(vm, instr, addr, closure)
        if op is Op.CVTTSD2SI:
            return self._wrap_cvttsd2si(vm, instr, addr, closure)
        if op is Op.MOVSD:
            return self._wrap_movsd(vm, instr, closure)
        if op is Op.MOV:
            return self._wrap_mov(vm, instr, closure)
        if op in _INT_COMPUTE:
            return self._wrap_int_compute(vm, instr, closure)
        if op is Op.LEA:
            return self._wrap_lea(vm, instr, closure)
        if op is Op.PUSH:
            return self._wrap_push(vm, instr, closure)
        if op is Op.POP:
            return self._wrap_pop(vm, instr, closure)
        if op is Op.CALL:
            return self._wrap_call(vm, closure)
        if op is Op.RET:
            return self._wrap_ret(vm, closure)
        if op is Op.MOVQXR:
            return self._wrap_movq(instr.operands[0].index,
                                   _GPR + instr.operands[1].index, vm, closure)
        if op is Op.MOVQRX:
            return self._wrap_movq(_GPR + instr.operands[0].index,
                                   instr.operands[1].index, vm, closure)
        if op is Op.MOVAPD:
            return self._wrap_movapd(vm, instr, closure)
        if op is Op.MOVSS:
            return self._wrap_movss(vm, instr, closure)
        if op is Op.CVTSD2SS:
            return self._wrap_cvtsd2ss(vm, instr, closure)
        if op is Op.CVTSS2SD:
            return self._wrap_cvtss2sd(vm, instr, closure)
        if op is Op.PUSHX:
            return self._wrap_pushx(vm, instr, closure)
        if op is Op.POPX:
            return self._wrap_popx(vm, instr, closure)
        if op is Op.PEXTR:
            return self._wrap_pextr(vm, instr, closure)
        if op is Op.PINSR:
            return self._wrap_pinsr(vm, instr, closure)
        if op is Op.OUTSD or op is Op.OUTSS or op is Op.OUTI:
            return self._wrap_out(vm, instr, closure)
        if op is Op.RAND or op is Op.MPIRANK or op is Op.MPISIZE:
            loc = _GPR + instr.operands[0].index
            return self._wrap_clear_dst(loc, closure)
        if op in _MPI_OPS:
            if vm.size == 1:
                if op is Op.ALLREDV or op is Op.ALLREDVSS:
                    # bounds check only; the count register and address
                    # still steer behavior.
                    return self._wrap_guard_only(
                        vm, instr.operands[0],
                        (_GPR + instr.operands[2].index,), closure
                    )
                return None  # single-rank collectives are no-ops
            return self._wrap_kill_all(closure)
        # Anything else touching tracked state is out of model:
        # conservatively kill every channel diverged at an operand slot.
        return self._wrap_conservative(vm, instr, addr, closure)

    # -- address divergence ------------------------------------------------

    def _guard_addr(self, locs: tuple) -> None:
        """A diverged register feeding an address computation sends the
        channel's access to a different location: out of model."""
        for loc in locs:
            self._kill_at(loc, "address-diverged")

    def _wrap_guard_only(self, vm, m: Mem, extra_locs: tuple, closure):
        locs = _mem_gpr_locs(m) + extra_locs

        def w_guard(idx):
            self._guard_addr(locs)
            return closure(idx)

        return w_guard

    # -- candidate arithmetic ---------------------------------------------

    def _wrap_scalar_bin(self, vm, instr, addr, closure):
        op = instr.opcode
        fn64 = _F64_BIN[op]
        fn32 = _F32_BIN[op]
        xl = vm.xmm_lo
        channels = self.channels
        rev = self.rev
        _set = self._set
        d = instr.operands[0].index
        src = instr.operands[1]
        if isinstance(src, Xmm):
            s = src.index

            def w_bin_xx(idx):
                a0 = xl[d]
                b0 = xl[s]
                nxt = closure(idx)
                r0 = xl[d]
                own = channels.get(addr)
                if own is None:
                    own = channels[addr] = Channel(addr)
                sd = rev.get(d)
                ss = rev.get(s)
                if sd or ss:
                    aff = set(sd) if sd else set()
                    if ss:
                        aff |= ss
                    aff.discard(own)
                else:
                    aff = ()
                if not own.unknown:
                    va = own.diffs.get(d, a0)
                    fa = downcast_in_place(va)
                    if s == d:
                        fb = fa
                    else:
                        fb = downcast_in_place(own.diffs.get(s, b0))
                        _set(own, s, fb, b0)
                    _set(
                        own, d,
                        REPLACED_FLAG_SHIFTED | fn32(fa & _M32, fb & _M32),
                        r0,
                    )
                for ch in aff:
                    ua = upcast_in_place(ch.diffs.get(d, a0))
                    if s == d:
                        ub = ua
                    else:
                        ub = upcast_in_place(ch.diffs.get(s, b0))
                        _set(ch, s, ub, b0)
                    _set(ch, d, fn64(ua, ub), r0)
                return nxt

            return w_bin_xx
        addrf = vm._addr_fn(src)
        alocs = _mem_gpr_locs(src)
        mem = vm.mem
        top = len(mem)

        def w_bin_xm(idx):
            self._guard_addr(alocs)
            a = addrf()
            if not 0 <= a < top:
                return closure(idx)  # out of bounds: the closure traps
            a0 = xl[d]
            b0 = mem[a]
            mloc = _MEM + a
            nxt = closure(idx)
            r0 = xl[d]
            own = channels.get(addr)
            if own is None:
                own = channels[addr] = Channel(addr)
            sd = rev.get(d)
            sm = rev.get(mloc)
            if sd or sm:
                aff = set(sd) if sd else set()
                if sm:
                    aff |= sm
                aff.discard(own)
            else:
                aff = ()
            # The memory operand goes through a scratch copy in both the
            # replacement and the guard: memory itself is never converted.
            if not own.unknown:
                fa = downcast_in_place(own.diffs.get(d, a0))
                fb = downcast_in_place(own.diffs.get(mloc, b0))
                _set(
                    own, d,
                    REPLACED_FLAG_SHIFTED | fn32(fa & _M32, fb & _M32),
                    r0,
                )
            for ch in aff:
                ua = upcast_in_place(ch.diffs.get(d, a0))
                ub = upcast_in_place(ch.diffs.get(mloc, b0))
                _set(ch, d, fn64(ua, ub), r0)
            return nxt

        return w_bin_xm

    def _wrap_scalar_un(self, vm, instr, addr, closure):
        op = instr.opcode
        fn64 = _F64_UN[op]
        fn32 = _F32_UN[op]
        xl = vm.xmm_lo
        channels = self.channels
        rev = self.rev
        _set = self._set
        d = instr.operands[0].index
        src = instr.operands[1]
        if isinstance(src, Xmm):
            s = src.index

            def w_un_x(idx):
                b0 = xl[s]
                nxt = closure(idx)
                r0 = xl[d]
                own = channels.get(addr)
                if own is None:
                    own = channels[addr] = Channel(addr)
                sd = rev.get(d)
                ss = rev.get(s)
                if sd or ss:
                    aff = set(sd) if sd else set()
                    if ss:
                        aff |= ss
                    aff.discard(own)
                else:
                    aff = ()
                if not own.unknown:
                    fb = downcast_in_place(own.diffs.get(s, b0))
                    if s != d:
                        _set(own, s, fb, b0)
                    _set(
                        own, d,
                        REPLACED_FLAG_SHIFTED | fn32(fb & _M32),
                        r0,
                    )
                for ch in aff:
                    ub = upcast_in_place(ch.diffs.get(s, b0))
                    if s != d:
                        _set(ch, s, ub, b0)
                    _set(ch, d, fn64(ub), r0)
                return nxt

            return w_un_x
        addrf = vm._addr_fn(src)
        alocs = _mem_gpr_locs(src)
        mem = vm.mem
        top = len(mem)

        def w_un_m(idx):
            self._guard_addr(alocs)
            a = addrf()
            if not 0 <= a < top:
                return closure(idx)
            b0 = mem[a]
            mloc = _MEM + a
            nxt = closure(idx)
            r0 = xl[d]
            own = channels.get(addr)
            if own is None:
                own = channels[addr] = Channel(addr)
            sd = rev.get(d)
            sm = rev.get(mloc)
            if sd or sm:
                aff = set(sd) if sd else set()
                if sm:
                    aff |= sm
                aff.discard(own)
            else:
                aff = ()
            if not own.unknown:
                fb = downcast_in_place(own.diffs.get(mloc, b0))
                _set(
                    own, d, REPLACED_FLAG_SHIFTED | fn32(fb & _M32), r0
                )
            for ch in aff:
                ub = upcast_in_place(ch.diffs.get(mloc, b0))
                _set(ch, d, fn64(ub), r0)
            return nxt

        return w_un_m

    # -- candidate compare / convert --------------------------------------

    def _wrap_ucomisd(self, vm, instr, addr, closure):
        xl = vm.xmm_lo
        channels = self.channels
        rev = self.rev
        _set = self._set
        _kill = self._kill
        d = instr.operands[0].index
        src = instr.operands[1]
        mem_src = isinstance(src, Mem)
        if mem_src:
            addrf = vm._addr_fn(src)
            alocs = _mem_gpr_locs(src)
            mem = vm.mem
            top = len(mem)
        else:
            s = src.index

        def w_ucomisd(idx):
            if mem_src:
                self._guard_addr(alocs)
                a = addrf()
                if not 0 <= a < top:
                    return closure(idx)
                b0 = mem[a]
                bloc = _MEM + a
            else:
                b0 = xl[s]
                bloc = s
            a0 = xl[d]
            nxt = closure(idx)
            own = channels.get(addr)
            if own is None:
                own = channels[addr] = Channel(addr)
            sd = rev.get(d)
            sb = rev.get(bloc)
            if sd or sb:
                aff = set(sd) if sd else set()
                if sb:
                    aff |= sb
                aff.discard(own)
            else:
                aff = ()
            base_rel = _relation(bits_to_double(a0), bits_to_double(b0))
            if not own.unknown:
                va = own.diffs.get(d, a0)
                vb = va if bloc == d else own.diffs.get(bloc, b0)
                fa = downcast_in_place(va)
                fb = fa if bloc == d else downcast_in_place(vb)
                rel = _relation(
                    bits_to_single(fa & _M32), bits_to_single(fb & _M32)
                )
                if rel != base_rel:
                    _kill(own, "compare-flip")
                else:
                    _set(own, d, fa, a0)
                    if not mem_src and s != d:
                        _set(own, s, fb, b0)
            for ch in aff:
                va = ch.diffs.get(d, a0)
                vb = va if bloc == d else ch.diffs.get(bloc, b0)
                ua = upcast_in_place(va)
                ub = ua if bloc == d else upcast_in_place(vb)
                rel = _relation(bits_to_double(ua), bits_to_double(ub))
                if rel != base_rel:
                    _kill(ch, "compare-flip")
                    continue
                _set(ch, d, ua, a0)
                if not mem_src and s != d:
                    _set(ch, s, ub, b0)
            return nxt

        return w_ucomisd

    def _wrap_cvtsi2sd(self, vm, instr, addr, closure):
        xl = vm.xmm_lo
        channels = self.channels
        rev = self.rev
        _set = self._set
        d = instr.operands[0].index
        sloc = _GPR + instr.operands[1].index

        def w_cvtsi2sd(idx):
            # A diverged integer source would convert to a different
            # value down every channel; out of model (never seen in
            # practice — loop indices are killed at their arithmetic).
            self._kill_at(sloc, "int-compute")
            nxt = closure(idx)
            r0 = xl[d]
            own = channels.get(addr)
            if own is None:
                own = channels[addr] = Channel(addr)
            # The guard run reproduces the baseline result exactly; the
            # replacement produces the flagged single.
            sd = rev.get(d)
            if sd:
                for ch in tuple(sd):
                    if ch is not own:
                        _set(ch, d, r0, r0)
            if not own.unknown:
                _set(
                    own, d,
                    REPLACED_FLAG_SHIFTED
                    | single_to_bits(bits_to_double(r0)),
                    r0,
                )
            return nxt

        return w_cvtsi2sd

    def _wrap_cvttsd2si(self, vm, instr, addr, closure):
        xl = vm.xmm_lo
        channels = self.channels
        rev = self.rev
        _set = self._set
        _kill = self._kill
        dloc = _GPR + instr.operands[0].index
        s = instr.operands[1].index

        def w_cvttsd2si(idx):
            b0 = xl[s]
            nxt = closure(idx)
            own = channels.get(addr)
            if own is None:
                own = channels[addr] = Channel(addr)
            ss = rev.get(s)
            if ss:
                aff = set(ss)
                aff.discard(own)
            else:
                aff = ()
            base_i = _trunc(bits_to_double(b0))
            if not own.unknown:
                fb = downcast_in_place(own.diffs.get(s, b0))
                if _trunc(bits_to_single(fb & _M32)) != base_i:
                    _kill(own, "int-convert-flip")
                else:
                    _set(own, s, fb, b0)
            for ch in aff:
                ub = upcast_in_place(ch.diffs.get(s, b0))
                if _trunc(bits_to_double(ub)) != base_i:
                    _kill(ch, "int-convert-flip")
                    continue
                _set(ch, s, ub, b0)
            # every surviving channel converts to the same integer: the
            # write erases any stale divergence in the destination GPR.
            self._clear(dloc)
            return nxt

        return w_cvttsd2si

    # -- data movement -----------------------------------------------------

    def _wrap_movsd(self, vm, instr, closure):
        xl = vm.xmm_lo
        _set = self._set
        dst, src = instr.operands
        if isinstance(dst, Xmm):
            d = dst.index
            if isinstance(src, Xmm):
                s = src.index
                if s == d:
                    return None
                _move = self._move

                def w_movsd_xx(idx):
                    b0 = xl[s]
                    nxt = closure(idx)
                    _move(s, d, b0, xl[d])
                    return nxt

                return w_movsd_xx
            addrf = vm._addr_fn(src)
            alocs = _mem_gpr_locs(src)
            mem = vm.mem
            top = len(mem)
            dhi = _XH + d
            _move = self._move

            def w_movsd_xm(idx):
                self._guard_addr(alocs)
                a = addrf()
                if not 0 <= a < top:
                    return closure(idx)
                b0 = mem[a]
                nxt = closure(idx)
                _move(_MEM + a, d, b0, xl[d])
                self._clear(dhi)  # the load zeroes the high lane
                return nxt

            return w_movsd_xm
        s = src.index
        addrf = vm._addr_fn(dst)
        alocs = _mem_gpr_locs(dst)
        top = len(vm.mem)
        _move = self._move

        def w_movsd_mx(idx):
            self._guard_addr(alocs)
            a = addrf()
            nxt = closure(idx)  # performs the bounds check itself
            if 0 <= a < top:
                b0 = xl[s]
                _move(s, _MEM + a, b0, b0)
            return nxt

        return w_movsd_mx

    def _wrap_mov(self, vm, instr, closure):
        gpr = vm.gpr
        mem = vm.mem
        top = len(mem)
        _move = self._move
        _clear = self._clear
        dst, src = instr.operands
        if isinstance(dst, Reg):
            dloc = _GPR + dst.index
            if isinstance(src, Reg):
                sloc = _GPR + src.index
                if sloc == dloc:
                    return None
                si = src.index

                def w_mov_rr(idx):
                    b0 = gpr[si]
                    nxt = closure(idx)
                    _move(sloc, dloc, b0, b0)
                    return nxt

                return w_mov_rr
            if isinstance(src, Imm):

                def w_mov_ri(idx):
                    nxt = closure(idx)
                    _clear(dloc)
                    return nxt

                return w_mov_ri
            addrf = vm._addr_fn(src)
            alocs = _mem_gpr_locs(src)

            def w_mov_rm(idx):
                self._guard_addr(alocs)
                a = addrf()
                if not 0 <= a < top:
                    return closure(idx)
                b0 = mem[a]
                nxt = closure(idx)
                _move(_MEM + a, dloc, b0, b0)
                return nxt

            return w_mov_rm
        addrf = vm._addr_fn(dst)
        alocs = _mem_gpr_locs(dst)
        if isinstance(src, Reg):
            sloc = _GPR + src.index
            si = src.index

            def w_mov_mr(idx):
                self._guard_addr(alocs)
                a = addrf()
                nxt = closure(idx)
                if 0 <= a < top:
                    b0 = gpr[si]
                    _move(sloc, _MEM + a, b0, b0)
                return nxt

            return w_mov_mr
        if isinstance(src, Imm):

            def w_mov_mi(idx):
                self._guard_addr(alocs)
                a = addrf()
                nxt = closure(idx)
                if 0 <= a < top:
                    _clear(_MEM + a)
                return nxt

            return w_mov_mi
        saddrf = vm._addr_fn(src)
        salocs = _mem_gpr_locs(src)

        def w_mov_mm(idx):
            self._guard_addr(alocs)
            self._guard_addr(salocs)
            sa = saddrf()
            da = addrf()
            if not 0 <= sa < top:
                return closure(idx)
            b0 = mem[sa]
            nxt = closure(idx)
            if 0 <= da < top:
                _move(_MEM + sa, _MEM + da, b0, b0)
            return nxt

        return w_mov_mm

    # -- integer computation: divergence must not enter ---------------------

    def _wrap_int_compute(self, vm, instr, closure):
        locs = []
        mem_srcs = []
        for operand in instr.operands:
            if isinstance(operand, Reg):
                locs.append(_GPR + operand.index)
            elif isinstance(operand, Mem):
                mem_srcs.append(
                    (vm._addr_fn(operand), _mem_gpr_locs(operand))
                )
        locs = tuple(locs)
        top = len(vm.mem)
        _kill_at = self._kill_at

        def w_int(idx):
            for loc in locs:
                _kill_at(loc, "int-compute")
            for addrf, alocs in mem_srcs:
                self._guard_addr(alocs)
                a = addrf()
                if 0 <= a < top:
                    _kill_at(_MEM + a, "int-compute")
            return closure(idx)

        return w_int

    def _wrap_lea(self, vm, instr, closure):
        dloc = _GPR + instr.operands[0].index
        alocs = _mem_gpr_locs(instr.operands[1])
        _clear = self._clear

        def w_lea(idx):
            self._guard_addr(alocs)
            nxt = closure(idx)
            _clear(dloc)
            return nxt

        return w_lea

    def _wrap_clear_dst(self, loc, closure):
        _clear = self._clear

        def w_clear(idx):
            nxt = closure(idx)
            _clear(loc)
            return nxt

        return w_clear

    # -- stack -------------------------------------------------------------

    _SP = _GPR + 15

    def _wrap_push(self, vm, instr, closure):
        gpr = vm.gpr
        _move = self._move
        _clear = self._clear
        sp_loc = self._SP
        src = instr.operands[0]
        if isinstance(src, Reg):
            sloc = _GPR + src.index
            si = src.index

            def w_push_r(idx):
                self._kill_at(sp_loc, "address-diverged")
                b0 = gpr[si]
                nxt = closure(idx)
                _move(sloc, _MEM + gpr[15], b0, b0)
                return nxt

            return w_push_r
        if isinstance(src, Imm):

            def w_push_i(idx):
                self._kill_at(sp_loc, "address-diverged")
                nxt = closure(idx)
                _clear(_MEM + gpr[15])
                return nxt

            return w_push_i
        saddrf = vm._addr_fn(src)
        salocs = _mem_gpr_locs(src)
        mem = vm.mem
        top = len(mem)

        def w_push_m(idx):
            self._kill_at(sp_loc, "address-diverged")
            self._guard_addr(salocs)
            sa = saddrf()
            if not 0 <= sa < top:
                return closure(idx)
            b0 = mem[sa]
            nxt = closure(idx)
            _move(_MEM + sa, _MEM + gpr[15], b0, b0)
            return nxt

        return w_push_m

    def _wrap_pop(self, vm, instr, closure):
        gpr = vm.gpr
        mem = vm.mem
        top = len(mem)
        _move = self._move
        dloc = _GPR + instr.operands[0].index
        sp_loc = self._SP

        def w_pop(idx):
            self._kill_at(sp_loc, "address-diverged")
            sp = gpr[15]
            if not 0 <= sp < top:
                return closure(idx)
            b0 = mem[sp]
            nxt = closure(idx)
            _move(_MEM + sp, dloc, b0, b0)
            return nxt

        return w_pop

    def _wrap_call(self, vm, closure):
        gpr = vm.gpr
        _clear = self._clear
        sp_loc = self._SP

        def w_call(idx):
            self._kill_at(sp_loc, "address-diverged")
            nxt = closure(idx)
            # the pushed return address is code-relative: identical in
            # every channel.
            _clear(_MEM + gpr[15])
            return nxt

        return w_call

    def _wrap_ret(self, vm, closure):
        gpr = vm.gpr
        _kill_at = self._kill_at
        sp_loc = self._SP

        def w_ret(idx):
            _kill_at(sp_loc, "address-diverged")
            # a diverged word where the return address lives would send
            # the channel's control flow elsewhere.
            _kill_at(_MEM + gpr[15], "return-address")
            return closure(idx)

        return w_ret

    def _wrap_pushx(self, vm, instr, closure):
        gpr = vm.gpr
        xl, xh = vm.xmm_lo, vm.xmm_hi
        _move = self._move
        sp_loc = self._SP
        x = instr.operands[0].index

        def w_pushx(idx):
            self._kill_at(sp_loc, "address-diverged")
            lo0, hi0 = xl[x], xh[x]
            nxt = closure(idx)
            sp = gpr[15]  # the closure wrote xl/xh at sp, sp + 1
            _move(x, _MEM + sp, lo0, lo0)
            _move(_XH + x, _MEM + sp + 1, hi0, hi0)
            return nxt

        return w_pushx

    def _wrap_popx(self, vm, instr, closure):
        gpr = vm.gpr
        mem = vm.mem
        top = len(mem)
        _move = self._move
        sp_loc = self._SP
        x = instr.operands[0].index

        def w_popx(idx):
            self._kill_at(sp_loc, "address-diverged")
            sp = gpr[15]
            if not (0 <= sp and sp + 1 < top):
                return closure(idx)
            lo0, hi0 = mem[sp], mem[sp + 1]
            nxt = closure(idx)
            _move(_MEM + sp, x, lo0, lo0)
            _move(_MEM + sp + 1, _XH + x, hi0, hi0)
            return nxt

        return w_popx

    # -- remaining xmm transports -----------------------------------------

    def _wrap_movq(self, dst_loc, src_loc, vm, closure):
        """MOVQXR / MOVQRX: raw 64-bit transfer between register files."""
        xl = vm.xmm_lo
        gpr = vm.gpr
        _move = self._move
        src_is_x = src_loc < _XH

        def w_movq(idx):
            b0 = xl[src_loc] if src_is_x else gpr[src_loc - _GPR]
            nxt = closure(idx)
            _move(src_loc, dst_loc, b0, b0)
            return nxt

        return w_movq

    def _wrap_movapd(self, vm, instr, closure):
        xl, xh = vm.xmm_lo, vm.xmm_hi
        _move = self._move
        dst, src = instr.operands
        if isinstance(dst, Xmm):
            d = dst.index
            if isinstance(src, Xmm):
                s = src.index
                if s == d:
                    return None

                def w_movapd_xx(idx):
                    lo0, hi0 = xl[s], xh[s]
                    nxt = closure(idx)
                    _move(s, d, lo0, xl[d])
                    _move(_XH + s, _XH + d, hi0, xh[d])
                    return nxt

                return w_movapd_xx
            addrf = vm._addr_fn(src)
            alocs = _mem_gpr_locs(src)
            mem = vm.mem
            top = len(mem)

            def w_movapd_xm(idx):
                self._guard_addr(alocs)
                a = addrf()
                if not (0 <= a and a + 1 < top):
                    return closure(idx)
                lo0, hi0 = mem[a], mem[a + 1]
                nxt = closure(idx)
                _move(_MEM + a, d, lo0, xl[d])
                _move(_MEM + a + 1, _XH + d, hi0, xh[d])
                return nxt

            return w_movapd_xm
        s = src.index
        addrf = vm._addr_fn(dst)
        alocs = _mem_gpr_locs(dst)
        top = len(vm.mem)

        def w_movapd_mx(idx):
            self._guard_addr(alocs)
            a = addrf()
            nxt = closure(idx)
            if 0 <= a and a + 1 < top:
                lo0, hi0 = xl[s], xh[s]
                _move(s, _MEM + a, lo0, lo0)
                _move(_XH + s, _MEM + a + 1, hi0, hi0)
            return nxt

        return w_movapd_mx

    def _wrap_movss(self, vm, instr, closure):
        xl = vm.xmm_lo
        _set = self._set
        dst, src = instr.operands
        if isinstance(dst, Xmm):
            d = dst.index
            if isinstance(src, Xmm):
                s = src.index

                def w_movss_xx(idx):
                    a0 = xl[d]
                    b0 = xl[s]
                    nxt = closure(idx)
                    r0 = xl[d]
                    for ch in self._touched(s, d):
                        va = ch.diffs.get(d, a0)
                        vb = ch.diffs.get(s, b0)
                        _set(ch, d, (va & ~_M32) | (vb & _M32), r0)
                    return nxt

                return w_movss_xx
            addrf = vm._addr_fn(src)
            alocs = _mem_gpr_locs(src)
            mem = vm.mem
            top = len(mem)
            dhi = _XH + d

            def w_movss_xm(idx):
                self._guard_addr(alocs)
                a = addrf()
                if not 0 <= a < top:
                    return closure(idx)
                b0 = mem[a]
                mloc = _MEM + a
                nxt = closure(idx)
                r0 = xl[d]
                for ch in self._touched(mloc, d):
                    _set(ch, d, ch.diffs.get(mloc, b0) & _M32, r0)
                self._clear(dhi)
                return nxt

            return w_movss_xm
        s = src.index
        addrf = vm._addr_fn(dst)
        alocs = _mem_gpr_locs(dst)
        mem = vm.mem
        top = len(mem)

        def w_movss_mx(idx):
            self._guard_addr(alocs)
            a = addrf()
            m0 = mem[a] if 0 <= a < top else 0
            nxt = closure(idx)
            if 0 <= a < top:
                b0 = xl[s]
                mloc = _MEM + a
                r0 = mem[a]
                for ch in self._touched(s, mloc):
                    vmw = ch.diffs.get(mloc, m0)
                    vs = ch.diffs.get(s, b0)
                    _set(ch, mloc, (vmw & ~_M32) | (vs & _M32), r0)
            return nxt

        return w_movss_mx

    def _wrap_cvtsd2ss(self, vm, instr, closure):
        xl = vm.xmm_lo
        _set = self._set
        d = instr.operands[0].index
        s = instr.operands[1].index

        def w_cvtsd2ss(idx):
            a0 = xl[d]
            b0 = xl[s]
            nxt = closure(idx)
            r0 = xl[d]
            for ch in self._touched(s, d):
                va = ch.diffs.get(d, a0)
                vb = va if s == d else ch.diffs.get(s, b0)
                _set(
                    ch, d,
                    (va & ~_M32) | single_to_bits(bits_to_double(vb)),
                    r0,
                )
            return nxt

        return w_cvtsd2ss

    def _wrap_cvtss2sd(self, vm, instr, closure):
        xl = vm.xmm_lo
        _set = self._set
        d = instr.operands[0].index
        s = instr.operands[1].index

        def w_cvtss2sd(idx):
            b0 = xl[s]
            nxt = closure(idx)
            r0 = xl[d]
            for ch in self._touched(s, d):
                vb = ch.diffs.get(s, b0)
                _set(ch, d, double_to_bits(bits_to_single(vb & _M32)), r0)
            return nxt

        return w_cvtss2sd

    def _wrap_pextr(self, vm, instr, closure):
        lane = instr.operands[2].value
        x = instr.operands[1].index
        src_loc = x + (_XH if lane else 0)
        dloc = _GPR + instr.operands[0].index
        xs = vm.xmm_hi if lane else vm.xmm_lo
        _move = self._move

        def w_pextr(idx):
            b0 = xs[x]
            nxt = closure(idx)
            _move(src_loc, dloc, b0, b0)
            return nxt

        return w_pextr

    def _wrap_pinsr(self, vm, instr, closure):
        lane = instr.operands[2].value
        x = instr.operands[0].index
        dst_loc = x + (_XH if lane else 0)
        si = instr.operands[1].index
        sloc = _GPR + si
        gpr = vm.gpr
        _move = self._move

        def w_pinsr(idx):
            b0 = gpr[si]
            nxt = closure(idx)
            _move(sloc, dst_loc, b0, b0)
            return nxt

        return w_pinsr

    # -- outputs -----------------------------------------------------------

    def _wrap_out(self, vm, instr, closure):
        op = instr.opcode
        r = instr.operands[0].index
        if op is Op.OUTI:
            loc = _GPR + r
            kind = "i"
        else:
            loc = r
            kind = "d" if op is Op.OUTSD else "s"
        xl = vm.xmm_lo
        gpr = vm.gpr
        rev = self.rev
        outss = op is Op.OUTSS

        def w_out(idx):
            b0 = gpr[r] if kind == "i" else xl[r]
            nxt = closure(idx)
            n = self._out_n
            self._out_n = n + 1
            s = rev.get(loc)
            if s:
                for ch in s:
                    bits = ch.diffs[loc]
                    if outss:
                        bits &= _M32
                        if bits == b0 & _M32:
                            continue
                    ch.out[n] = (kind, bits)
            return nxt

        return w_out

    # -- out-of-model fallback ---------------------------------------------

    def _wrap_kill_all(self, closure):
        """Multi-rank collectives mix state across ranks the channel
        model does not follow: every channel loses its verdict."""

        def w_kill_all(idx):
            self.tainted = True
            for ch in tuple(self.channels.values()):
                if not ch.unknown:
                    self._kill(ch, "collective")
            return closure(idx)

        return w_kill_all

    def _wrap_conservative(self, vm, instr, addr, closure):
        """Ops the channel model does not simulate (packed arithmetic,
        single-precision arithmetic): kill any channel whose divergence
        could flow through them, and — if the op is itself a replacement
        candidate — its own channel too, so no verdict is ever derived
        from unmodeled semantics."""
        info = OPCODE_INFO.get(instr.opcode)
        locs: list[int] = []
        mem_ops: list[Mem] = []
        for operand in instr.operands:
            if isinstance(operand, Xmm):
                locs.append(operand.index)
                locs.append(_XH + operand.index)
            elif isinstance(operand, Reg):
                locs.append(_GPR + operand.index)
            elif isinstance(operand, Mem):
                mem_ops.append(operand)
        locs = tuple(locs)
        guards = [(vm._addr_fn(m), _mem_gpr_locs(m)) for m in mem_ops]
        top = len(vm.mem)
        candidate = bool(info is not None and info.single_equiv is not None)
        channels = self.channels
        _kill_at = self._kill_at
        _kill = self._kill

        def w_conservative(idx):
            for loc in locs:
                _kill_at(loc, "unmodeled-op")
            for addrf, alocs in guards:
                self._guard_addr(alocs)
                a = addrf()
                if 0 <= a < top:
                    _kill_at(_MEM + a, "unmodeled-op")
                    _kill_at(_MEM + a + 1, "unmodeled-op")
            if candidate:
                ch = channels.get(addr)
                if ch is None:
                    ch = channels[addr] = Channel(addr)
                if not ch.unknown:
                    _kill(ch, "unmodeled-op")
            return closure(idx)

        return w_conservative
