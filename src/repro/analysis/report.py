"""The analysis report: per-instruction shadow statistics, keyed like
the configuration tree.

An :class:`AnalysisReport` is the durable artifact of one shadow run
(`repro analyze` writes it as JSON): for every observed candidate
instruction it records the value range, cancellation census, float32
shadow errors and range violations, addressed both by text address and
by the ``INSNnn`` node id the search's :class:`repro.config` tree
assigns — so search, viewer and experiments can join it against any
configuration without re-deriving the tree.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass

REPORT_VERSION = 2

#: channel verdict values (see :mod:`repro.analysis.channels`)
VERDICT_PASS = "pass"
VERDICT_FAIL = "fail"
VERDICT_UNKNOWN = "unknown"


def _enc(v: float):
    """Floats in JSON: infinities become the strings "inf"/"-inf"."""
    if v == math.inf:
        return "inf"
    if v == -math.inf:
        return "-inf"
    return v


def _dec(v) -> float:
    if v == "inf":
        return math.inf
    if v == "-inf":
        return -math.inf
    return float(v)


@dataclass(slots=True)
class InstructionAnalysis:
    """Shadow statistics of one candidate instruction."""

    addr: int
    node_id: str          # INSNnn id in the config tree ("" if unmapped)
    mnemonic: str
    execs: int
    min_abs: float        # smallest nonzero |operand-or-result| seen
    max_abs: float        # largest finite |operand-or-result| seen
    cancel_events: int    # ADDSD/SUBSD exponent drops >= CANCEL_MIN_BITS
    cancel_max_bits: int  # worst exponent drop observed
    max_local_err: float  # worst rel. error of the one-instruction f32 replacement
    max_shadow_err: float  # worst rel. error of the accumulated f32 shadow
    overflow: int         # results above float32 range
    underflow: int        # nonzero results below float32 normals
    flips: int            # compares/conversions that decide differently in f32
    #: exact singleton-replacement outcome from the shadow channel:
    #: "pass"/"fail" when the channel followed the whole replaced run,
    #: "unknown" when divergence escaped the model (see channels.py).
    verdict: str = VERDICT_UNKNOWN
    #: why the channel lost its verdict ("" unless verdict == "unknown")
    verdict_why: str = ""

    def to_json(self) -> dict:
        d = asdict(self)
        for k in ("min_abs", "max_abs", "max_local_err", "max_shadow_err"):
            d[k] = _enc(d[k])
        return d

    @classmethod
    def from_json(cls, d: dict) -> "InstructionAnalysis":
        d = dict(d)
        for k in ("min_abs", "max_abs", "max_local_err", "max_shadow_err"):
            d[k] = _dec(d[k])
        return cls(**d)


@dataclass(slots=True)
class AnalysisReport:
    """Everything one shadow-execution run learned about a workload."""

    workload: str
    program: str
    candidates: int       # candidate instructions in the config tree
    observed: int         # candidates that actually executed
    instructions: dict    # addr -> InstructionAnalysis

    # -- lookups ---------------------------------------------------------

    def get(self, addr: int) -> InstructionAnalysis | None:
        return self.instructions.get(addr)

    def for_addrs(self, addrs) -> list:
        """The observed entries among *addrs* (unobserved ones skipped)."""
        out = []
        for addr in addrs:
            ia = self.instructions.get(addr)
            if ia is not None:
                out.append(ia)
        return out

    def summarize(self, addrs) -> dict | None:
        """Aggregate statistics over a node's instruction addresses, the
        shape the viewer renders per tree node.  None when nothing under
        the node was observed."""
        entries = self.for_addrs(addrs)
        if not entries:
            return None
        return {
            "execs": sum(e.execs for e in entries),
            "min_abs": min(e.min_abs for e in entries),
            "max_abs": max(e.max_abs for e in entries),
            "cancel_events": sum(e.cancel_events for e in entries),
            "cancel_max_bits": max(e.cancel_max_bits for e in entries),
            "max_local_err": max(e.max_local_err for e in entries),
            "max_shadow_err": max(e.max_shadow_err for e in entries),
            "overflow": sum(e.overflow for e in entries),
            "underflow": sum(e.underflow for e in entries),
            "flips": sum(e.flips for e in entries),
            "verdicts": {
                v: n
                for v in (VERDICT_PASS, VERDICT_FAIL, VERDICT_UNKNOWN)
                if (n := sum(1 for e in entries if e.verdict == v))
            },
        }

    def verdict_histogram(self) -> dict:
        """Counts per verdict, with unknown reasons broken out — the
        shape the viewer's analysis section renders."""
        hist: dict[str, int] = {}
        for ia in self.instructions.values():
            key = ia.verdict
            if key == VERDICT_UNKNOWN and ia.verdict_why:
                key = f"unknown:{ia.verdict_why}"
            hist[key] = hist.get(key, 0) + 1
        return dict(sorted(hist.items()))

    # -- serialization ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "workload": self.workload,
            "program": self.program,
            "candidates": self.candidates,
            "observed": self.observed,
            "instructions": [
                self.instructions[a].to_json()
                for a in sorted(self.instructions)
            ],
        }

    def dumps(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)

    @classmethod
    def from_json(cls, d: dict) -> "AnalysisReport":
        version = d.get("version")
        if version != REPORT_VERSION:
            raise ValueError(f"unsupported analysis report version {version!r}")
        instructions = {}
        for entry in d["instructions"]:
            ia = InstructionAnalysis.from_json(entry)
            instructions[ia.addr] = ia
        return cls(
            workload=d["workload"],
            program=d["program"],
            candidates=d["candidates"],
            observed=d["observed"],
            instructions=instructions,
        )

    @classmethod
    def loads(cls, text: str) -> "AnalysisReport":
        return cls.from_json(json.loads(text))
