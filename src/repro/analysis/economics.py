"""Guidance economics: is the shadow analysis worth its up-front run?

The shadow-value analysis saves evaluations (pruned singletons) but
costs one observed run before the search starts.  On workloads with
cheap evaluations and many prunes the trade wins; on workloads with
expensive evaluations and few prunes it loses outright — mg.W's guided
search was measurably *slower* end-to-end than the unguided one.

This module keeps a process-global record of what guidance actually
cost and saved per workload, measured by the engine itself after every
guided search.  ``SearchOptions(analysis="auto")`` consults it: the
first search of a workload always analyzes (there is nothing to predict
from, and the run doubles as the measurement); later searches skip the
analysis when its measured cost exceeds the evaluation time the
measured prune count is predicted to save.

The registry is deliberately latest-wins and in-memory only: guidance
economics are a property of this machine, this workload scale, and this
build, none of which survive a process boundary.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class GuidanceRecord:
    """What one guided search measured for a workload."""

    analysis_wall_s: float   #: wall cost of the shadow run + guide build
    avg_eval_wall_s: float   #: mean wall per evaluated configuration
    pruned: int              #: evaluations the guide skipped outright


@dataclass(frozen=True, slots=True)
class GuidanceDecision:
    """An ``analysis="auto"`` verdict, with the numbers behind it."""

    analyze: bool
    reason: str              #: "no-prior" | "profitable" | "unprofitable"
    predicted_saving_s: float = 0.0
    predicted_cost_s: float = 0.0


_LOCK = threading.Lock()
_RECORDS: dict[str, GuidanceRecord] = {}


def record(
    workload: str,
    analysis_wall_s: float,
    avg_eval_wall_s: float,
    pruned: int,
) -> None:
    """Store what a guided search just measured (latest run wins)."""
    with _LOCK:
        _RECORDS[workload] = GuidanceRecord(
            analysis_wall_s, avg_eval_wall_s, pruned
        )


def stats(workload: str) -> GuidanceRecord | None:
    return _RECORDS.get(workload)


def should_analyze(workload: str) -> GuidanceDecision:
    """Decide whether an ``analysis="auto"`` search should pay for the
    shadow run: yes when nothing is known yet (the run is also the
    measurement), otherwise only when the measured prune count times the
    measured per-evaluation wall exceeds the measured analysis wall."""
    prior = _RECORDS.get(workload)
    if prior is None:
        return GuidanceDecision(True, "no-prior")
    saving = prior.pruned * prior.avg_eval_wall_s
    cost = prior.analysis_wall_s
    if saving >= cost:
        return GuidanceDecision(True, "profitable", saving, cost)
    return GuidanceDecision(False, "unprofitable", saving, cost)


def clear() -> None:
    """Forget all measurements (tests; never needed in production)."""
    with _LOCK:
        _RECORDS.clear()
