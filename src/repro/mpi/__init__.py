"""Simulated multi-rank (MPI) execution.

Each rank is an independent :class:`~repro.vm.machine.VM` instance with
its own memory; collectives are coordinated by a blocking scheduler with
an alpha-beta (LogP-style) communication cost model.  Communication time
is *not* instrumented — just as the paper's tool leaves MPI library calls
alone — which is exactly why the measured instrumentation overhead falls
as ranks are added (their Figure 8): the uninstrumented communication
fraction grows with scale.
"""

from repro.mpi.runner import MpiResult, MultiRankRunner, run_mpi_program
from repro.mpi.costmodel import CommCostModel

__all__ = [
    "MpiResult",
    "MultiRankRunner",
    "run_mpi_program",
    "CommCostModel",
]
