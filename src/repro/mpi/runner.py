"""Rank scheduler: runs P VM instances and coordinates their collectives.

Execution model: every rank runs until it either halts or blocks at a
collective.  When all live ranks are blocked at the *same* collective,
the operation is applied, every participant's cycle clock advances to

    max(arrival clocks) + comm_cost

and all ranks resume.  A rank halting while others still wait at a
collective is reported as a deadlock (a real MPI program would hang).

The reported ``elapsed`` is the maximum cycle clock across ranks — the
parallel makespan, the quantity whose ratio between instrumented and
original runs reproduces the paper's Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.binary.model import Program
from repro.fpbits.ieee import (
    bits_to_double,
    bits_to_single,
    double_to_bits,
    single_to_bits,
)
from repro.isa.opcodes import RED_MAX, RED_MIN, RED_SUM
from repro.mpi.costmodel import CommCostModel
from repro.telemetry import NULL_TELEMETRY
from repro.vm.errors import CollectiveYield, VmTrap
from repro.vm.machine import VM, ExecResult


class MpiError(Exception):
    """Deadlock or mismatched collectives."""


@dataclass(slots=True)
class MpiResult:
    """Outcome of a multi-rank run."""

    size: int
    elapsed: int                    # makespan in cycles
    per_rank: list                  # list[ExecResult]
    collectives: int = 0
    #: per-rank cycles spent blocked in collectives (wait + transfer);
    #: compute time for rank r is per_rank[r].cycles - comm_cycles[r].
    comm_cycles: list = field(default_factory=list)

    @property
    def outputs(self) -> list:
        """Rank 0's output stream (the conventional reporting rank)."""
        return self.per_rank[0].outputs

    def values(self) -> list:
        from repro.vm.outputs import decode_outputs

        return decode_outputs(self.outputs)

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.per_rank)


_RED_FUNCS = {
    RED_SUM: lambda values: sum(values),
    RED_MIN: min,
    RED_MAX: max,
}


class MultiRankRunner:
    """Runs one program at ``size`` ranks."""

    def __init__(
        self,
        program: Program,
        size: int,
        stack_words: int = 8192,
        seed: int = 0x9E3779B97F4A7C15,
        max_steps: int = 200_000_000,
        profile: bool = False,
        cost_model: CommCostModel | None = None,
        telemetry=None,
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.cost_model = cost_model or CommCostModel()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._comm = [0] * size
        # Decorrelate rank RNG streams deterministically.
        self.vms = [
            VM(
                program,
                stack_words=stack_words,
                seed=(seed + 0x9E3779B97F4A7C15 * rank) & 0xFFFFFFFFFFFFFFFF or 1,
                rank=rank,
                size=size,
                max_steps=max_steps,
                profile=profile,
            )
            for rank in range(size)
        ]
        self.collectives = 0

    def run(self) -> MpiResult:
        if self.size == 1:
            result = self.vms[0].run()
            return self._finish(MpiResult(1, result.cycles, [result], 0, [0]))

        vms = self.vms
        resume_at = {r: vm.entry_index() for r, vm in enumerate(vms)}
        blocked: dict[int, CollectiveYield] = {}
        active = set(range(self.size))

        while active:
            runnable = [r for r in sorted(active) if r not in blocked]
            if not runnable:
                # Every live rank is parked at a collective.  It only
                # completes if *all* ranks of the communicator are present.
                if len(blocked) != self.size:
                    raise MpiError(
                        f"deadlock: ranks {sorted(blocked)} blocked at a "
                        f"collective but ranks "
                        f"{sorted(set(range(self.size)) - set(blocked))} "
                        "have already terminated"
                    )
                self._complete_collective(blocked, active)
                for rank, y in blocked.items():
                    resume_at[rank] = y.resume_index
                blocked.clear()
                continue
            for rank in runnable:
                try:
                    halted = vms[rank].resume(resume_at[rank])
                except CollectiveYield as y:
                    blocked[rank] = y
                    continue
                if halted:
                    active.discard(rank)

        per_rank = [vm.result() for vm in vms]
        elapsed = max(r.cycles for r in per_rank)
        return self._finish(
            MpiResult(
                self.size, elapsed, per_rank, self.collectives, list(self._comm)
            )
        )

    def _finish(self, result: MpiResult) -> MpiResult:
        """Emit the per-rank compute/comm attribution for a completed run."""
        telemetry = self.telemetry
        if telemetry.enabled:
            for rank, rank_result in enumerate(result.per_rank):
                comm = result.comm_cycles[rank]
                telemetry.emit(
                    "mpi.rank",
                    rank=rank,
                    cycles=rank_result.cycles,
                    compute_cycles=rank_result.cycles - comm,
                    comm_cycles=comm,
                )
            telemetry.emit(
                "mpi.run",
                size=result.size,
                elapsed=result.elapsed,
                collectives=result.collectives,
            )
        return result

    # -- collectives ---------------------------------------------------------------

    def _complete_collective(self, blocked: dict, active: set) -> None:
        if set(blocked) != active:
            raise MpiError("collective does not include every live rank")
        kinds = {y.kind for y in blocked.values()}
        if len(kinds) != 1:
            raise MpiError(f"mismatched collectives: {sorted(kinds)}")
        kind = kinds.pop()
        vms = self.vms
        self.collectives += 1

        if kind == "allred":
            args = {y.arg for y in blocked.values()}
            if len(args) != 1:
                raise MpiError("mismatched reduction operators")
            fn = _RED_FUNCS[args.pop()]
            xregs = {r: y.xmm for r, y in blocked.items()}
            values = [bits_to_double(vms[r].xmm_lo[xregs[r]]) for r in sorted(blocked)]
            result = double_to_bits(fn(values))
            for r in blocked:
                vms[r].xmm_lo[xregs[r]] = result
            cost = self.cost_model.allreduce(self.size, words=1)
        elif kind == "allredss":
            args = {y.arg for y in blocked.values()}
            if len(args) != 1:
                raise MpiError("mismatched reduction operators")
            fn = _RED_FUNCS[args.pop()]
            xregs = {r: y.xmm for r, y in blocked.items()}
            values = [
                bits_to_single(vms[r].xmm_lo[xregs[r]] & 0xFFFFFFFF)
                for r in sorted(blocked)
            ]
            result = single_to_bits(fn(values))
            for r in blocked:
                lane = vms[r].xmm_lo[xregs[r]]
                vms[r].xmm_lo[xregs[r]] = (lane & 0xFFFFFFFF00000000) | result
            cost = self.cost_model.allreduce(self.size, words=1)
        elif kind == "allredv" or kind == "allredvss":
            args = {y.arg for y in blocked.values()}
            counts = {y.count for y in blocked.values()}
            if len(args) != 1 or len(counts) != 1:
                raise MpiError("mismatched vector collective parameters")
            fn = _RED_FUNCS[args.pop()]
            n = counts.pop()
            single = kind == "allredvss"
            for k in range(n):
                if single:
                    values = [
                        bits_to_single(vms[r].mem[blocked[r].addr + k] & 0xFFFFFFFF)
                        for r in sorted(blocked)
                    ]
                    result = single_to_bits(fn(values))
                    for r in blocked:
                        cell = vms[r].mem[blocked[r].addr + k]
                        vms[r].mem[blocked[r].addr + k] = (
                            cell & 0xFFFFFFFF00000000
                        ) | result
                else:
                    values = [
                        bits_to_double(vms[r].mem[blocked[r].addr + k])
                        for r in sorted(blocked)
                    ]
                    result = double_to_bits(fn(values))
                    for r in blocked:
                        vms[r].mem[blocked[r].addr + k] = result
            cost = self.cost_model.allreduce(self.size, words=n)
        elif kind == "bcastsd":
            roots = {y.arg for y in blocked.values()}
            if len(roots) != 1:
                raise MpiError("mismatched broadcast roots")
            root = roots.pop()
            if root not in blocked:
                raise MpiError(f"broadcast root {root} is not participating")
            xregs = {r: y.xmm for r, y in blocked.items()}
            value = vms[root].xmm_lo[xregs[root]]
            for r in blocked:
                vms[r].xmm_lo[xregs[r]] = value
            cost = self.cost_model.bcast(self.size, words=1)
        elif kind == "barrier":
            cost = self.cost_model.barrier(self.size)
        else:  # pragma: no cover - unreachable with current opcodes
            raise MpiError(f"unknown collective {kind!r}")

        # Synchronize clocks: everyone leaves at max(arrival) + cost.
        # Everything between a rank's arrival and the common departure is
        # communication time (wait for stragglers + the transfer itself).
        leave = max(vms[r]._cyc[0] for r in blocked) + cost
        for r in blocked:
            self._comm[r] += leave - vms[r]._cyc[0]
            vms[r]._cyc[0] = leave


def run_mpi_program(
    program: Program,
    size: int,
    **kwargs,
) -> MpiResult:
    """Convenience wrapper: run *program* at *size* ranks."""
    return MultiRankRunner(program, size, **kwargs).run()
