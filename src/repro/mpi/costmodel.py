"""Communication cost model for collectives.

A simple alpha-beta model: a collective over ``P`` ranks costs

    alpha * ceil(log2 P) + beta * words

cycles, charged to every participant (tree-structured implementation).
The constants are calibrated so that, at NAS-analogue problem sizes, the
communication share of runtime at 8 ranks is large enough to visibly
dilute instrumentation overhead — the paper's Figure 8 behaviour — while
remaining small at 1 rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2


@dataclass(frozen=True, slots=True)
class CommCostModel:
    """Per-collective cycle charges."""

    alpha: int = 3000     # per-hop latency
    beta: int = 8         # per-word bandwidth charge
    barrier_alpha: int = 1500

    def hops(self, size: int) -> int:
        return max(1, ceil(log2(size))) if size > 1 else 0

    def allreduce(self, size: int, words: int = 1) -> int:
        if size <= 1:
            return 0
        return self.alpha * self.hops(size) + self.beta * words

    def bcast(self, size: int, words: int = 1) -> int:
        if size <= 1:
            return 0
        return self.alpha * self.hops(size) + self.beta * words

    def barrier(self, size: int) -> int:
        if size <= 1:
            return 0
        return self.barrier_alpha * self.hops(size)
