"""repro — a reproduction of *Automatically Adapting Programs for
Mixed-Precision Floating-Point Computation* (Lam, Hollingsworth,
de Supinski, LeGendre; SC'12 poster / ICS'13).

The original system rewrites x86-64 binaries (via Dyninst/XED) so that
selected double-precision instructions execute in single precision **in
place** — the 32-bit result parked in the low half of the 64-bit slot,
the high half holding the ``0x7FF4DEAD`` sentinel — and searches a
program's configuration space breadth-first for the coarsest structures
that tolerate the replacement.  This package rebuilds the entire stack on
a virtual x86-SSE-like ISA so every mechanism (bit-level replacement,
snippet generation, CFG patching, binary rewriting, the automatic search,
the NAS/AMG/SuperLU evaluation) runs faithfully and deterministically in
pure Python.

Quickstart
----------

>>> from repro import compile_source, run_program, build_tree, Config, instrument
>>> program = compile_source('''
... fn main() {
...     var s: real = 0.0;
...     for i in 0 .. 100 { s = s + 0.1; }
...     out(s);
... }
... ''')
>>> original = run_program(program)
>>> config = Config.all_single(build_tree(program))
>>> mixed = run_program(instrument(program, config).program)
>>> original.values()[0], mixed.values()[0]   # doctest: +SKIP
(9.99999999999998, 10.000001907348633)

See ``examples/`` for end-to-end scenarios and ``repro.experiments`` for
the drivers that regenerate every table and figure of the paper.
"""

from repro.asm import AsmBuilder, assemble_text, disassemble_program
from repro.binary import Program, build_cfg
from repro.campaign import Campaign
from repro.compiler import CompileOptions, compile_program, compile_source
from repro.config import Config, Policy, build_tree, dump_config, load_config
from repro.instrument import InstrumentedProgram, instrument
from repro.mpi import MultiRankRunner, run_mpi_program
from repro.search import SearchEngine, SearchOptions, SearchResult
from repro.telemetry import (
    JsonlSink,
    MetricsRegistry,
    ProgressRenderer,
    Telemetry,
)
from repro.vm import VM, ExecResult, VmTrap, run_program
from repro.store import ResultStore
from repro.vm.costs import CostModel, DEFAULT_COST_MODEL
from repro.workloads import Workload, make_nas, make_workload

__version__ = "1.0.0"

__all__ = [
    "AsmBuilder",
    "assemble_text",
    "disassemble_program",
    "Program",
    "build_cfg",
    "CompileOptions",
    "compile_program",
    "compile_source",
    "Config",
    "Policy",
    "build_tree",
    "dump_config",
    "load_config",
    "InstrumentedProgram",
    "instrument",
    "MultiRankRunner",
    "run_mpi_program",
    "SearchEngine",
    "SearchOptions",
    "SearchResult",
    "Campaign",
    "ResultStore",
    "Telemetry",
    "JsonlSink",
    "MetricsRegistry",
    "ProgressRenderer",
    "VM",
    "ExecResult",
    "VmTrap",
    "run_program",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Workload",
    "make_nas",
    "make_workload",
    "__version__",
]
