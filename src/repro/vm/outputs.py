"""Decoding and comparison of program outputs.

Programs emit raw records: ``("i", bits)`` from ``outi``, ``("d", bits)``
from ``outsd`` and ``("s", bits)`` from ``outss``.  Decoding is
*flag-transparent* for every lattice width: a double output whose high
word carries a replacement sentinel (``0x7FF4DEAD`` for binary32,
``0x7FF4BEEF``/``0x7FF4FEED`` for the 16-bit rungs) decodes to the
narrow value stored in its low word.  This mirrors how the paper
compares the output of an instrumented run with that of a manually
converted single-precision build.
"""

from __future__ import annotations

import math

from repro.fpbits.ieee import bits_to_double, bits_to_single
from repro.fpbits.replace import LOW_WORD_MASK, WIDTH_CODECS, replaced_width


def decode_output(record: tuple) -> float | int:
    """Decode one raw output record to a Python number."""
    kind, bits = record
    if kind == "i":
        return bits - 0x10000000000000000 if bits >= 0x8000000000000000 else bits
    if kind == "d":
        width = replaced_width(bits)
        if width is not None:
            return WIDTH_CODECS[width][2](bits & LOW_WORD_MASK)
        return bits_to_double(bits)
    if kind == "s":
        return bits_to_single(bits)
    raise ValueError(f"unknown output record kind {kind!r}")


def decode_outputs(records: list) -> list:
    """Decode a whole output stream."""
    return [decode_output(r) for r in records]


def outputs_close(
    a: list,
    b: list,
    rel_tol: float = 1e-9,
    abs_tol: float = 0.0,
) -> bool:
    """Compare two decoded output streams element-wise.

    Integer records must match exactly; floating records must be within
    tolerance and must not be NaN (a NaN anywhere fails the comparison —
    the replacement sentinel is designed to surface as NaN).
    """
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, int) and isinstance(y, int):
            if x != y:
                return False
            continue
        x = float(x)
        y = float(y)
        if x != x or y != y:
            return False
        if not math.isclose(x, y, rel_tol=rel_tol, abs_tol=abs_tol):
            return False
    return True
