"""Segment specialization: fused superinstruction closures.

The per-instruction interpreter (:mod:`repro.vm.machine`) pays one
Python call per executed instruction.  This module compiles each
straight-line *run* of a segment — a maximal sequence of non-control
instructions, optionally closed by its branch/call/ret terminator — into
ONE generated Python function that executes the whole run with operand
registers, addresses, immediates and per-instruction cycle costs folded
into its source as literals.  Common pairs (load+op, op+store,
cmp+branch) thereby execute inside a single frame; the cmp+branch pair
in particular turns a tight loop's body+test+back-edge into one call per
iteration.

Parity contract (asserted by tests/vm/test_fused_parity.py and the
differential suites): a fused run is bit-identical and cycle-identical
to the per-instruction loop —

* cycles are accumulated as one constant-folded ``cyc[0] += TOTAL`` on
  fall-through; every fault site charges exactly the partial sum of the
  instructions *before* the faulting one (the reference closures charge
  cost after the trap check);
* the step budget is tracked in a steps-left cell ``sl``: a run of K
  instructions decrements by K up front and every early exit adds back
  the unexecuted suffix, so ``steps`` accounting is exact to the
  instruction;
* a run whose remaining budget is smaller than K deoptimizes: the
  generated function hands control to the VM's single-step tail, which
  executes the reference closures one by one until the budget expires
  (or a trap/halt/yield wins the race) — byte-identical to the
  reference loop's timeout behaviour;
* memory/stack faults raise :class:`FusedTrap` carrying the *relative*
  index of the faulting instruction; the VM stamps the absolute text
  address on, producing the same message the reference loop produces.
  Integer division by zero raises a plain address-less ``VmTrap``,
  exactly like the reference helpers.

Generated factories are position- and VM-independent: branch targets,
return addresses, MPI identity and the state arrays are passed as
factory arguments, so one compiled factory (keyed by the run's
*unpatched template bytes* plus the cost model) is shared across every
program, configuration and Machine in the process.
"""

from __future__ import annotations

from repro.fpbits import ieee, narrow
from repro.isa.opcodes import Op, OPCODE_INFO, RED_MAX, RED_MIN, RED_SUM
from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.vm.errors import VmTrap

_M64 = 0xFFFFFFFFFFFFFFFF
_M32 = 0xFFFFFFFF
_HI32 = 0xFFFFFFFF00000000
_SIGN64 = 1 << 63
_INT_INDEFINITE = 0x8000000000000000
_XORSHIFT_MULT = 2685821657736338717


class FusedTrap(VmTrap):
    """Execution fault raised inside a fused run.

    Carries the untouched core message plus the *relative* index of the
    faulting instruction within the run; :meth:`VM.resume` stamps the
    absolute text address before the trap escapes."""

    def __init__(self, message: str, rel: int) -> None:
        super().__init__(message)
        self.core = message
        self.rel = rel


class Unfusable(Exception):
    """Internal: this instruction has no fused template."""


def _s64(v: int) -> int:
    return v - 0x10000000000000000 if v & _SIGN64 else v


#: globals handed to every exec'd factory — the same helpers the
#: reference closures call, bound once.
_EXEC_GLOBALS = {
    "__builtins__": {"abs": abs, "float": float, "int": int, "len": len},
    "_M64": _M64,
    "_M32": _M32,
    "_HI32": _HI32,
    "_INT_INDEFINITE": _INT_INDEFINITE,
    "_XORSHIFT_MULT": _XORSHIFT_MULT,
    "_s64": _s64,
    "_FT": FusedTrap,
    "VmTrap": VmTrap,
    "bits_to_double": ieee.bits_to_double,
    "bits_to_single": ieee.bits_to_single,
    "double_to_bits": ieee.double_to_bits,
    "single_to_bits": ieee.single_to_bits,
}
for _name in (
    "double_add", "double_sub", "double_mul", "double_div", "double_min",
    "double_max", "double_sqrt", "double_abs", "double_neg", "double_sin",
    "double_cos", "double_exp", "double_log",
    "single_add", "single_sub", "single_mul", "single_div", "single_min",
    "single_max", "single_sqrt", "single_abs", "single_neg", "single_sin",
    "single_cos", "single_exp", "single_log",
):
    _EXEC_GLOBALS[_name] = getattr(ieee, _name)
for _name in (
    "bf16_add", "bf16_sub", "bf16_mul", "bf16_div", "bf16_min", "bf16_max",
    "bf16_sqrt", "bf16_abs", "bf16_neg", "bf16_sin", "bf16_cos", "bf16_exp",
    "bf16_log", "bits_to_bf16", "bf16_to_bits",
    "f16_add", "f16_sub", "f16_mul", "f16_div", "f16_min", "f16_max",
    "f16_sqrt", "f16_abs", "f16_neg", "f16_sin", "f16_cos", "f16_exp",
    "f16_log", "bits_to_f16", "f16_to_bits",
):
    _EXEC_GLOBALS[_name] = getattr(narrow, _name)

_FPD_BIN = {
    Op.ADDSD: "double_add", Op.SUBSD: "double_sub", Op.MULSD: "double_mul",
    Op.DIVSD: "double_div", Op.MINSD: "double_min", Op.MAXSD: "double_max",
}
_FPD_UN = {
    Op.SQRTSD: "double_sqrt", Op.ABSSD: "double_abs", Op.NEGSD: "double_neg",
    Op.SINSD: "double_sin", Op.COSSD: "double_cos", Op.EXPSD: "double_exp",
    Op.LOGSD: "double_log",
}
_FPS_BIN = {
    Op.ADDSS: "single_add", Op.SUBSS: "single_sub", Op.MULSS: "single_mul",
    Op.DIVSS: "single_div", Op.MINSS: "single_min", Op.MAXSS: "single_max",
}
_FPS_UN = {
    Op.SQRTSS: "single_sqrt", Op.ABSSS: "single_abs", Op.NEGSS: "single_neg",
    Op.SINSS: "single_sin", Op.COSSS: "single_cos", Op.EXPSS: "single_exp",
    Op.LOGSS: "single_log",
}
_FPN_BIN = {
    Op.ADDBF: "bf16_add", Op.SUBBF: "bf16_sub", Op.MULBF: "bf16_mul",
    Op.DIVBF: "bf16_div", Op.MINBF: "bf16_min", Op.MAXBF: "bf16_max",
    Op.ADDHF: "f16_add", Op.SUBHF: "f16_sub", Op.MULHF: "f16_mul",
    Op.DIVHF: "f16_div", Op.MINHF: "f16_min", Op.MAXHF: "f16_max",
}
_FPN_UN = {
    Op.SQRTBF: "bf16_sqrt", Op.ABSBF: "bf16_abs", Op.NEGBF: "bf16_neg",
    Op.SINBF: "bf16_sin", Op.COSBF: "bf16_cos", Op.EXPBF: "bf16_exp",
    Op.LOGBF: "bf16_log",
    Op.SQRTHF: "f16_sqrt", Op.ABSHF: "f16_abs", Op.NEGHF: "f16_neg",
    Op.SINHF: "f16_sin", Op.COSHF: "f16_cos", Op.EXPHF: "f16_exp",
    Op.LOGHF: "f16_log",
}
#: opcode -> (decode name, encode name) for narrow compare/convert.
_FPN_CODEC_OPS = {
    Op.UCOMIBF: ("bits_to_bf16", "bf16_to_bits"),
    Op.CVTSI2BF: ("bits_to_bf16", "bf16_to_bits"),
    Op.CVTTBF2SI: ("bits_to_bf16", "bf16_to_bits"),
    Op.CVTSD2BF: ("bits_to_bf16", "bf16_to_bits"),
    Op.CVTBF2SD: ("bits_to_bf16", "bf16_to_bits"),
    Op.UCOMIHF: ("bits_to_f16", "f16_to_bits"),
    Op.CVTSI2HF: ("bits_to_f16", "f16_to_bits"),
    Op.CVTTHF2SI: ("bits_to_f16", "f16_to_bits"),
    Op.CVTSD2HF: ("bits_to_f16", "f16_to_bits"),
    Op.CVTHF2SD: ("bits_to_f16", "f16_to_bits"),
}
_PD_BIN = {
    Op.ADDPD: "double_add", Op.SUBPD: "double_sub",
    Op.MULPD: "double_mul", Op.DIVPD: "double_div",
}
_PS_BIN = {
    Op.ADDPS: "single_add", Op.SUBPS: "single_sub",
    Op.MULPS: "single_mul", Op.DIVPS: "single_div",
}
_INT_BIN_EXPR = {
    Op.ADD: "({d} + {s}) & _M64",
    Op.SUB: "({d} - {s}) & _M64",
    Op.IMUL: "({d} * {s}) & _M64",
    Op.AND: "{d} & {s}",
    Op.OR: "{d} | {s}",
    Op.XOR: "{d} ^ {s}",
    Op.SHL: "({d} << ({s} & 63)) & _M64",
    Op.SHR: "{d} >> ({s} & 63)",
    Op.SAR: "(_s64({d}) >> ({s} & 63)) & _M64",
}
_COND_EXPR = {
    Op.JE: "flags[0]",
    Op.JNE: "not flags[0]",
    Op.JL: "flags[1]",
    Op.JLE: "flags[1] or flags[0]",
    Op.JG: "not (flags[1] or flags[0] or flags[2])",
    Op.JGE: "not flags[1] and not flags[2]",
    Op.JP: "flags[2]",
    Op.JNP: "not flags[2]",
}

#: placeholder for the run length, substituted once the run is closed.
_K = "__K__"


def _addr_expr(m: Mem) -> str:
    parts = []
    if m.base is not None:
        parts.append(f"gpr[{m.base}]")
    if m.index is not None:
        if m.scale != 1:
            parts.append(f"gpr[{m.index}] * {m.scale}")
        else:
            parts.append(f"gpr[{m.index}]")
    if m.disp or not parts:
        parts.append(str(m.disp))
    return " + ".join(parts)


class _RunEmitter:
    """Accumulates the generated source of one fused run.

    ``j`` is the relative index of the instruction being emitted; every
    fault site charges the constant partial cycle sum of the completed
    instructions and returns the unexecuted suffix to the steps-left
    cell before raising.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.lines: list[str] = []
        self.j = 0
        self.cycles = 0  # partial sum: cost of instructions < j
        self.halted = False  # a HALT was emitted; run falls through no more

    # -- plumbing ---------------------------------------------------------

    def emit(self, *lines: str) -> None:
        self.lines.extend(lines)

    def fault_lines(self, raise_stmt: str, extra_cycles: int = 0) -> list[str]:
        out = []
        charge = self.cycles + extra_cycles
        if charge:
            out.append(f"cyc[0] += {charge}")
        out.append(f"sl[0] += {_K} - {self.j + 1}")
        out.append(raise_stmt)
        return out

    def guard(self, cond: str, raise_stmt: str) -> None:
        self.emit(f"if {cond}:")
        self.emit(*("    " + ln for ln in self.fault_lines(raise_stmt)))

    def ft(self, msg_expr: str) -> str:
        return f"raise _FT({msg_expr}, {self.j})"

    # -- operand fragments ------------------------------------------------

    def read64(self, m: Mem, var: str) -> None:
        a = f"a{self.j}"
        self.emit(f"{a} = {_addr_expr(m)}")
        self.guard(
            f"not (0 <= {a} < top)",
            self.ft(f'f"memory read out of bounds: {{{a}}}"'),
        )
        self.emit(f"{var} = mem[{a}]")

    def src64(self, operand) -> str:
        """Expression for a 64-bit source; Mem emits a checked read."""
        if isinstance(operand, Reg):
            return f"gpr[{operand.index}]"
        if isinstance(operand, Imm):
            return str(operand.value & _M64)
        if isinstance(operand, Mem):
            var = f"v{self.j}"
            self.read64(operand, var)
            return var
        raise Unfusable

    def xsrc64(self, operand) -> str:
        if isinstance(operand, Xmm):
            return f"xl[{operand.index}]"
        if isinstance(operand, Mem):
            var = f"v{self.j}"
            self.read64(operand, var)
            return var
        raise Unfusable

    def xsrc128(self, operand) -> tuple[str, str]:
        """(lo, hi) expressions; Mem emits a checked 2-cell read."""
        if isinstance(operand, Xmm):
            i = operand.index
            return f"xl[{i}]", f"xh[{i}]"
        if isinstance(operand, Mem):
            a = f"a{self.j}"
            self.emit(f"{a} = {_addr_expr(operand)}")
            self.guard(
                f"not (0 <= {a} and {a} + 1 < top)",
                self.ft(f'f"packed memory read out of bounds: {{{a}}}"'),
            )
            return f"mem[{a}]", f"mem[{a} + 1]"
        raise Unfusable

    # -- one instruction --------------------------------------------------

    def instruction(self, instr, cost: int) -> None:
        """Emit the body of one straight-line instruction.

        Mirrors ``VM._build`` exactly: same state effects, same trap
        messages, same evaluation order (source reads trap before
        destination writes; overflow checks precede source reads where
        the reference closure checks first).  Raises :class:`Unfusable`
        for opcodes/operand shapes without a template.
        """
        op = instr.opcode
        ops = instr.operands
        j = self.j
        e = self.emit

        if op is Op.NOP:
            pass

        elif op is Op.HALT:
            # Charges its own cost, then stops the machine: the fault
            # preamble with the HALT's cost included is exactly the
            # reference accounting.
            self.emit(*self.fault_lines("raise halt", extra_cycles=cost))
            self.halted = True

        elif op is Op.OUTI:
            e(f'outputs.append(("i", gpr[{ops[0].index}]))')
        elif op is Op.OUTSD:
            e(f'outputs.append(("d", xl[{ops[0].index}]))')
        elif op is Op.OUTSS:
            e(f'outputs.append(("s", xl[{ops[0].index}] & _M32))')

        elif op is Op.RAND:
            r = ops[0].index
            e(f"s{j} = rng[0]",
              f"s{j} ^= s{j} >> 12",
              f"s{j} = (s{j} ^ (s{j} << 25)) & _M64",
              f"s{j} ^= s{j} >> 27",
              f"rng[0] = s{j}",
              f"gpr[{r}] = (s{j} * _XORSHIFT_MULT) & _M64")

        elif op is Op.MOV:
            dst, src = ops
            if isinstance(dst, Reg):
                d = dst.index
                if isinstance(src, Reg):
                    e(f"gpr[{d}] = gpr[{src.index}]")
                elif isinstance(src, Imm):
                    e(f"gpr[{d}] = {src.value & _M64}")
                elif isinstance(src, Mem):
                    self.read64(src, f"gpr[{d}]")
                else:
                    raise Unfusable
            elif isinstance(dst, Mem):
                # Reference order: source evaluated first (its read may
                # trap), then the destination bounds check.
                sv = self.src64(src)
                a = f"w{j}"
                e(f"{a} = {_addr_expr(dst)}")
                self.guard(
                    f"not (0 <= {a} < top)",
                    self.ft(f'f"memory write out of bounds: {{{a}}}"'),
                )
                e(f"mem[{a}] = {sv}")
            else:
                raise Unfusable

        elif op is Op.LEA:
            e(f"gpr[{ops[0].index}] = ({_addr_expr(ops[1])}) & _M64")

        elif op in _INT_BIN_EXPR:
            d = ops[0].index
            sv = self.src64(ops[1])
            expr = _INT_BIN_EXPR[op].format(d=f"gpr[{d}]", s=sv)
            e(f"gpr[{d}] = {expr}")

        elif op is Op.IDIV or op is Op.IREM:
            d = ops[0].index
            sv = self.src64(ops[1])
            e(f"b{j} = {sv}")
            # Plain address-less VmTrap, exactly like the reference
            # _idiv/_irem helpers (resume() must not stamp an address).
            self.guard(
                f"b{j} == 0",
                'raise VmTrap("integer division by zero")',
            )
            e(f"sa{j} = _s64(gpr[{d}])",
              f"sb{j} = _s64(b{j})")
            if op is Op.IDIV:
                e(f"q{j} = abs(sa{j}) // abs(sb{j})",
                  f"if (sa{j} < 0) != (sb{j} < 0):",
                  f"    q{j} = -q{j}",
                  f"gpr[{d}] = q{j} & _M64")
            else:
                e(f"q{j} = abs(sa{j}) % abs(sb{j})",
                  f"if sa{j} < 0:",
                  f"    q{j} = -q{j}",
                  f"gpr[{d}] = q{j} & _M64")

        elif op is Op.NOT:
            e(f"gpr[{ops[0].index}] ^= _M64")
        elif op is Op.NEG:
            d = ops[0].index
            e(f"gpr[{d}] = (-gpr[{d}]) & _M64")
        elif op is Op.INC:
            d = ops[0].index
            e(f"gpr[{d}] = (gpr[{d}] + 1) & _M64")
        elif op is Op.DEC:
            d = ops[0].index
            e(f"gpr[{d}] = (gpr[{d}] - 1) & _M64")

        elif op is Op.CMP:
            d = ops[0].index
            sv = self.src64(ops[1])
            e(f"ca{j} = gpr[{d}]",
              f"cb{j} = {sv}",
              f"flags[0] = 1 if ca{j} == cb{j} else 0",
              f"flags[1] = 1 if _s64(ca{j}) < _s64(cb{j}) else 0",
              "flags[2] = 0")

        elif op is Op.TEST:
            d = ops[0].index
            sv = self.src64(ops[1])
            e(f"v{j}t = gpr[{d}] & {sv}",
              f"flags[0] = 1 if v{j}t == 0 else 0",
              f"flags[1] = (v{j}t >> 63) & 1",
              "flags[2] = 0")

        elif op is Op.PUSH:
            e(f"sp{j} = gpr[15] - 1")
            self.guard(f"sp{j} < limit", self.ft('"stack overflow"'))
            sv = self.src64(ops[0])
            e(f"mem[sp{j}] = {sv}",
              f"gpr[15] = sp{j}")

        elif op is Op.POP:
            e(f"sp{j} = gpr[15]")
            self.guard(f"sp{j} >= top", self.ft('"stack underflow"'))
            e(f"gpr[{ops[0].index}] = mem[sp{j}]",
              f"gpr[15] = sp{j} + 1")

        elif op is Op.PUSHX:
            x = ops[0].index
            e(f"sp{j} = gpr[15] - 2")
            self.guard(f"sp{j} < limit", self.ft('"stack overflow"'))
            e(f"mem[sp{j}] = xl[{x}]",
              f"mem[sp{j} + 1] = xh[{x}]",
              f"gpr[15] = sp{j}")

        elif op is Op.POPX:
            x = ops[0].index
            e(f"sp{j} = gpr[15]")
            self.guard(f"sp{j} + 1 >= top", self.ft('"stack underflow"'))
            e(f"xl[{x}] = mem[sp{j}]",
              f"xh[{x}] = mem[sp{j} + 1]",
              f"gpr[15] = sp{j} + 2")

        elif op is Op.MOVSD:
            dst, src = ops
            if isinstance(dst, Xmm):
                d = dst.index
                if isinstance(src, Xmm):
                    e(f"xl[{d}] = xl[{src.index}]")
                elif isinstance(src, Mem):
                    self.read64(src, f"xl[{d}]")
                    e(f"xh[{d}] = 0")
                else:
                    raise Unfusable
            elif isinstance(dst, Mem) and isinstance(src, Xmm):
                a = f"w{j}"
                e(f"{a} = {_addr_expr(dst)}")
                self.guard(
                    f"not (0 <= {a} < top)",
                    self.ft(f'f"memory write out of bounds: {{{a}}}"'),
                )
                e(f"mem[{a}] = xl[{src.index}]")
            else:
                raise Unfusable

        elif op is Op.MOVAPD:
            dst, src = ops
            if isinstance(dst, Xmm):
                lo, hi = self.xsrc128(src)
                d = dst.index
                e(f"xl[{d}] = {lo}",
                  f"xh[{d}] = {hi}")
            elif isinstance(dst, Mem) and isinstance(src, Xmm):
                a = f"w{j}"
                s = src.index
                e(f"{a} = {_addr_expr(dst)}")
                self.guard(
                    f"not (0 <= {a} and {a} + 1 < top)",
                    self.ft(f'f"packed memory write out of bounds: {{{a}}}"'),
                )
                e(f"mem[{a}] = xl[{s}]",
                  f"mem[{a} + 1] = xh[{s}]")
            else:
                raise Unfusable

        elif op in _FPD_BIN:
            fn = _FPD_BIN[op]
            d = ops[0].index
            sv = self.xsrc64(ops[1])
            e(f"xl[{d}] = {fn}(xl[{d}], {sv})")

        elif op in _FPD_UN:
            fn = _FPD_UN[op]
            d = ops[0].index
            sv = self.xsrc64(ops[1])
            e(f"xl[{d}] = {fn}({sv})")

        elif op is Op.UCOMISD or op is Op.UCOMISS:
            d = ops[0].index
            sv = self.xsrc64(ops[1])
            if op is Op.UCOMISD:
                e(f"fa{j} = bits_to_double(xl[{d}])",
                  f"fb{j} = bits_to_double({sv})")
            else:
                e(f"fa{j} = bits_to_single(xl[{d}] & _M32)",
                  f"fb{j} = bits_to_single(({sv}) & _M32)")
            e(f"if fa{j} != fa{j} or fb{j} != fb{j}:",
              "    flags[0] = 1",
              "    flags[1] = 0",
              "    flags[2] = 1",
              "else:",
              f"    flags[0] = 1 if fa{j} == fb{j} else 0",
              f"    flags[1] = 1 if fa{j} < fb{j} else 0",
              "    flags[2] = 0")

        elif op is Op.CVTSI2SD:
            e(f"xl[{ops[0].index}] = double_to_bits(float(_s64(gpr[{ops[1].index}])))")

        elif op is Op.CVTTSD2SI or op is Op.CVTTSS2SI:
            d, s = ops[0].index, ops[1].index
            if op is Op.CVTTSD2SI:
                e(f"f{j} = bits_to_double(xl[{s}])")
            else:
                e(f"f{j} = bits_to_single(xl[{s}] & _M32)")
            e(f"if f{j} != f{j} or f{j} >= 9.223372036854776e18 or f{j} < -9.223372036854776e18:",
              f"    gpr[{d}] = _INT_INDEFINITE",
              "else:",
              f"    gpr[{d}] = int(f{j}) & _M64")

        elif op is Op.CVTSD2SS:
            d, s = ops[0].index, ops[1].index
            e(f"xl[{d}] = (xl[{d}] & _HI32) | single_to_bits(bits_to_double(xl[{s}]))")

        elif op is Op.CVTSS2SD:
            d, s = ops[0].index, ops[1].index
            e(f"xl[{d}] = double_to_bits(bits_to_single(xl[{s}] & _M32))")

        elif op in _FPN_BIN:
            fn = _FPN_BIN[op]
            d = ops[0].index
            sv = self.xsrc64(ops[1])
            e(f"v{j}n = xl[{d}]",
              f"xl[{d}] = (v{j}n & _HI32) | {fn}(v{j}n & 0xFFFF, ({sv}) & 0xFFFF)")

        elif op in _FPN_UN:
            fn = _FPN_UN[op]
            d = ops[0].index
            sv = self.xsrc64(ops[1])
            e(f"xl[{d}] = (xl[{d}] & _HI32) | {fn}(({sv}) & 0xFFFF)")

        elif op is Op.UCOMIBF or op is Op.UCOMIHF:
            dec = _FPN_CODEC_OPS[op][0]
            d = ops[0].index
            sv = self.xsrc64(ops[1])
            e(f"fa{j} = {dec}(xl[{d}] & 0xFFFF)",
              f"fb{j} = {dec}(({sv}) & 0xFFFF)",
              f"if fa{j} != fa{j} or fb{j} != fb{j}:",
              "    flags[0] = 1",
              "    flags[1] = 0",
              "    flags[2] = 1",
              "else:",
              f"    flags[0] = 1 if fa{j} == fb{j} else 0",
              f"    flags[1] = 1 if fa{j} < fb{j} else 0",
              "    flags[2] = 0")

        elif op is Op.CVTSI2BF or op is Op.CVTSI2HF:
            enc = _FPN_CODEC_OPS[op][1]
            d, s = ops[0].index, ops[1].index
            e(f"xl[{d}] = (xl[{d}] & _HI32) | {enc}(float(_s64(gpr[{s}])))")

        elif op is Op.CVTTBF2SI or op is Op.CVTTHF2SI:
            dec = _FPN_CODEC_OPS[op][0]
            d, s = ops[0].index, ops[1].index
            e(f"f{j} = {dec}(xl[{s}] & 0xFFFF)",
              f"if f{j} != f{j} or f{j} >= 9.223372036854776e18 or f{j} < -9.223372036854776e18:",
              f"    gpr[{d}] = _INT_INDEFINITE",
              "else:",
              f"    gpr[{d}] = int(f{j}) & _M64")

        elif op is Op.CVTSD2BF or op is Op.CVTSD2HF:
            enc = _FPN_CODEC_OPS[op][1]
            d, s = ops[0].index, ops[1].index
            e(f"xl[{d}] = (xl[{d}] & _HI32) | {enc}(bits_to_double(xl[{s}]))")

        elif op is Op.CVTBF2SD or op is Op.CVTHF2SD:
            dec = _FPN_CODEC_OPS[op][0]
            d, s = ops[0].index, ops[1].index
            e(f"xl[{d}] = double_to_bits({dec}(xl[{s}] & 0xFFFF))")

        elif op is Op.MOVQXR:
            e(f"xl[{ops[0].index}] = gpr[{ops[1].index}]")
        elif op is Op.MOVQRX:
            e(f"gpr[{ops[0].index}] = xl[{ops[1].index}]")

        elif op in _PD_BIN:
            fn = _PD_BIN[op]
            d = ops[0].index
            lo, hi = self.xsrc128(ops[1])
            e(f"lo{j} = {lo}",
              f"hi{j} = {hi}",
              f"xl[{d}] = {fn}(xl[{d}], lo{j})",
              f"xh[{d}] = {fn}(xh[{d}], hi{j})")

        elif op is Op.SQRTPD:
            d = ops[0].index
            lo, hi = self.xsrc128(ops[1])
            e(f"lo{j} = {lo}",
              f"hi{j} = {hi}",
              f"xl[{d}] = double_sqrt(lo{j})",
              f"xh[{d}] = double_sqrt(hi{j})")

        elif op is Op.MOVSS:
            dst, src = ops
            if isinstance(dst, Xmm):
                d = dst.index
                if isinstance(src, Xmm):
                    e(f"xl[{d}] = (xl[{d}] & _HI32) | (xl[{src.index}] & _M32)")
                elif isinstance(src, Mem):
                    self.read64(src, f"v{j}")
                    e(f"xl[{d}] = v{j} & _M32",
                      f"xh[{d}] = 0")
                else:
                    raise Unfusable
            elif isinstance(dst, Mem) and isinstance(src, Xmm):
                a = f"w{j}"
                e(f"{a} = {_addr_expr(dst)}")
                self.guard(
                    f"not 0 <= {a} < top",
                    self.ft(f'f"memory write out of bounds: {{{a}}}"'),
                )
                e(f"mem[{a}] = (mem[{a}] & _HI32) | (xl[{src.index}] & _M32)")
            else:
                raise Unfusable

        elif op in _FPS_BIN:
            fn = _FPS_BIN[op]
            d = ops[0].index
            sv = self.xsrc64(ops[1])
            e(f"v{j}d = xl[{d}]",
              f"xl[{d}] = (v{j}d & _HI32) | {fn}(v{j}d & _M32, ({sv}) & _M32)")

        elif op in _FPS_UN:
            fn = _FPS_UN[op]
            d = ops[0].index
            sv = self.xsrc64(ops[1])
            e(f"xl[{d}] = (xl[{d}] & _HI32) | {fn}(({sv}) & _M32)")

        elif op is Op.CVTSI2SS:
            d, s = ops[0].index, ops[1].index
            e(f"xl[{d}] = (xl[{d}] & _HI32) | single_to_bits(float(_s64(gpr[{s}])))")

        elif op in _PS_BIN:
            fn = _PS_BIN[op]
            d = ops[0].index
            lo, hi = self.xsrc128(ops[1])
            e(f"lo{j} = {lo}",
              f"hi{j} = {hi}",
              f"pa{j} = xl[{d}]",
              f"xl[{d}] = ({fn}((pa{j} >> 32) & _M32, (lo{j} >> 32) & _M32) << 32) | {fn}(pa{j} & _M32, lo{j} & _M32)",
              f"pb{j} = xh[{d}]",
              f"xh[{d}] = ({fn}((pb{j} >> 32) & _M32, (hi{j} >> 32) & _M32) << 32) | {fn}(pb{j} & _M32, hi{j} & _M32)")

        elif op is Op.SQRTPS:
            d = ops[0].index
            lo, hi = self.xsrc128(ops[1])
            e(f"lo{j} = {lo}",
              f"hi{j} = {hi}",
              f"xl[{d}] = (single_sqrt((lo{j} >> 32) & _M32) << 32) | single_sqrt(lo{j} & _M32)",
              f"xh[{d}] = (single_sqrt((hi{j} >> 32) & _M32) << 32) | single_sqrt(hi{j} & _M32)")

        elif op is Op.PEXTR or op is Op.PINSR:
            lane = ops[2].value
            if lane not in (0, 1):
                raise Unfusable
            arr = "xl" if lane == 0 else "xh"
            if op is Op.PEXTR:
                e(f"gpr[{ops[0].index}] = {arr}[{ops[1].index}]")
            else:
                e(f"{arr}[{ops[0].index}] = gpr[{ops[1].index}]")

        elif op is Op.MPIRANK:
            e(f"gpr[{ops[0].index}] = rank")
        elif op is Op.MPISIZE:
            e(f"gpr[{ops[0].index}] = size")

        elif op in (Op.ALLRED, Op.ALLREDSS, Op.BCASTSD, Op.BARRIER):
            # Local no-ops at size 1 (cost only); multi-rank collectives
            # yield to the scheduler, so they never join a fused run.
            if self.size != 1:
                raise Unfusable
            if op is not Op.BCASTSD and op is not Op.BARRIER:
                if ops[1].value not in (RED_SUM, RED_MIN, RED_MAX):
                    raise Unfusable

        elif op in (Op.ALLREDV, Op.ALLREDVSS):
            if self.size != 1:
                raise Unfusable
            if ops[1].value not in (RED_SUM, RED_MIN, RED_MAX):
                raise Unfusable
            e(f"a{j} = {_addr_expr(ops[0])}",
              f"n{j} = gpr[{ops[2].index}]")
            self.guard(
                f"not (0 <= a{j} and a{j} + n{j} <= top)",
                self.ft(f'f"vector collective out of bounds: {{a{j}}}+{{n{j}}}"'),
            )

        else:
            raise Unfusable

        self.j += 1
        self.cycles += cost

    # -- terminators ------------------------------------------------------

    def terminator(self, instr, cost: int, branch_extra: int) -> int:
        """Emit the run's closing control transfer; returns the number
        of ``targets`` slots the factory call must fill.

        The fall-through total (all straight-line costs plus the
        terminator's own cost) is folded into each exit path as one
        constant; taken branches add the cost model's extra.
        """
        op = instr.opcode
        j = self.j
        e = self.emit
        total = self.cycles + cost

        if op is Op.JMP:
            e(f"cyc[0] += {total + branch_extra}",
              "return targets[0]")
            self.j += 1
            return 1

        if op in _COND_EXPR:
            e(f"if {_COND_EXPR[op]}:",
              f"    cyc[0] += {total + branch_extra}",
              "    return targets[0]",
              f"cyc[0] += {total}",
              f"return idx + {_K}")
            self.j += 1
            return 1

        if op is Op.CALL:
            e("spc = gpr[15] - 1")
            self.guard("spc < limit", self.ft('"stack overflow on call"'))
            e("mem[spc] = targets[1]",
              "gpr[15] = spc",
              f"cyc[0] += {total}",
              "return targets[0]")
            self.j += 1
            return 2

        if op is Op.RET:
            e("spr = gpr[15]")
            self.guard("spr >= top", self.ft('"stack underflow on ret"'))
            e("ra = mem[spr]",
              "gpr[15] = spr + 1",
              "tr = a2i.get(ra)")
            self.guard(
                "tr is None",
                self.ft('f"return to non-instruction address {ra:#x}"'),
            )
            e(f"cyc[0] += {total}",
              "return tr")
            self.j += 1
            return 0

        raise Unfusable


# -- factory assembly ------------------------------------------------------

#: a run must replace at least this many dispatches to be worth a frame.
MIN_RUN = 2

_FACTORY_SIG = (
    "def _factory(gpr, mem, xl, xh, flags, outputs, rng, cyc, sl, "
    "limit, top, a2i, tail, targets, rank, size, halt):"
)

#: cost model -> {(run template bytes, terminator opcode, size==1):
#: exec'd factory}.  Factories are position- and VM-independent, so the
#: cache is process-global: every Machine, worker and rebind in the
#: process shares compiled run bodies.  The model (a frozen dataclass
#: whose hash walks every field) is paid once per load via the outer
#: dict instead of once per run.
_FACTORIES: dict = {}

#: number of run bodies actually exec-compiled (cache misses), kept for
#: the dispatch microbenchmark and tests.
_COMPILED = [0]


def compiled_runs() -> int:
    return _COMPILED[0]


def clear_factory_cache() -> None:
    _FACTORIES.clear()
    _COMPILED[0] = 0


#: marker distinguishing "never compiled" from the None sentinel that
#: records a run whose emission raised :class:`Unfusable`.
_MISS = object()


def _assemble(em: _RunEmitter, open_ended: bool) -> str:
    """Render the emitter's body into factory source.

    *open_ended* runs (no terminator, no HALT) fall through: they charge
    the constant total and advance past the run.
    """
    k = em.j
    lines = [_FACTORY_SIG, "    def _fused(idx):"]
    lines.append(f"        if sl[0] < {k}:")
    lines.append("            return tail(idx)")
    lines.append(f"        sl[0] -= {k}")
    lines.extend("        " + ln for ln in em.lines)
    if open_ended:
        if em.cycles:
            lines.append(f"        cyc[0] += {em.cycles}")
        lines.append(f"        return idx + {k}")
    lines.append("    return _fused")
    return "\n".join(lines).replace(_K, str(k)) + "\n"


def _compile_run(instrs, costs, start, k_members, term_i, size, branch_extra):
    """Exec-compile the factory for one run; None if emission refuses.

    Covers the rare operand shapes the cheap fusability tables admit but
    the emitter has no template for: the None lands in ``_FACTORIES`` as
    a sentinel, so the shape is probed exactly once per unique run key.
    """
    em = _RunEmitter(size)
    try:
        for i in range(start, start + k_members):
            em.instruction(instrs[i], costs[i])
        if term_i >= 0:
            em.terminator(instrs[term_i], costs[term_i], branch_extra)
        src = _assemble(em, term_i < 0 and not em.halted)
    except Unfusable:
        return None
    ns: dict = {}
    exec(compile(src, "<fused-run>", "exec"), _EXEC_GLOBALS, ns)
    factory = ns["_factory"]
    factory.__fused_source__ = src
    _COMPILED[0] += 1
    return factory


_TERMINATORS = frozenset(_COND_EXPR) | {Op.JMP, Op.CALL, Op.RET}

#: collectives become straight-line code only in single-rank mode; with
#: size > 1 they yield to the rank scheduler and stay on the slow path.
_MPI_MEMBERS = frozenset(
    (Op.ALLRED, Op.ALLREDSS, Op.BCASTSD, Op.BARRIER, Op.ALLREDV, Op.ALLREDVSS)
)

#: every opcode ``_RunEmitter.instruction`` has a template for.  Used for
#: run *detection*, which must be cheap: source is generated only when the
#: process-global factory cache misses the run's key.
_MEMBER_OPS = (
    frozenset(
        (
            Op.NOP, Op.HALT, Op.OUTI, Op.OUTSD, Op.OUTSS, Op.RAND, Op.MOV,
            Op.LEA, Op.IDIV, Op.IREM, Op.NOT, Op.NEG, Op.INC, Op.DEC,
            Op.CMP, Op.TEST, Op.PUSH, Op.POP, Op.PUSHX, Op.POPX,
            Op.MOVSD, Op.MOVAPD, Op.MOVSS, Op.UCOMISD, Op.UCOMISS,
            Op.CVTSI2SD, Op.CVTSI2SS, Op.CVTTSD2SI, Op.CVTTSS2SI,
            Op.CVTSD2SS, Op.CVTSS2SD, Op.MOVQXR, Op.MOVQRX,
            Op.SQRTPD, Op.SQRTPS, Op.PEXTR, Op.PINSR,
            Op.MPIRANK, Op.MPISIZE,
        )
    )
    | frozenset(_INT_BIN_EXPR)
    | frozenset(_FPD_BIN)
    | frozenset(_FPD_UN)
    | frozenset(_FPS_BIN)
    | frozenset(_FPS_UN)
    | frozenset(_FPN_BIN)
    | frozenset(_FPN_UN)
    | frozenset(_FPN_CODEC_OPS)
    | frozenset(_PD_BIN)
    | frozenset(_PS_BIN)
    | _MPI_MEMBERS
)


def _vm_state(vm) -> tuple:
    return (
        vm.gpr, vm.mem, vm.xmm_lo, vm.xmm_hi, vm.flags, vm.outputs,
        vm.rng, vm._cyc, vm._sl, vm.stack_limit, len(vm.mem),
        vm._addr2idx, vm._fused_tail,
    )


def _scan_span(vm, lo: int, hi: int, leaders) -> list:
    """Detect the fusable runs of instruction span ``[lo, hi)``.

    Returns the span's *partition*: ``(rel_start, k_total, term_rel,
    term_opcode)`` tuples plus the run's compiled factory, all relative
    to *lo* and free of any per-load data — branch targets stay out (the
    terminator's operand is resolved at instantiation time), so a
    partition computed once for a segment template is valid for every
    later placement of the same template.

    Run keys into the factory cache are the members' *raw text bytes*
    plus the terminator's opcode.  Member encodings carry no positional
    data — branches and calls never join the member stretch — so
    identical bytes at any address decode to identical instructions, and
    factories are shared across layouts, configurations, VMs and rebinds
    process-wide.  A bytes slice hashes at C speed, which keeps the
    per-load key cost negligible when a partition is not cached.
    """
    instrs = vm._instrs
    costs = vm._inst_costs
    addrs = vm._instr_addrs
    text = vm.program.text
    n = len(instrs)
    size = vm.size
    model = vm.cost_model
    branch_extra = model.branch_taken_extra
    size_one = size == 1
    members = _MEMBER_OPS
    mpi = _MPI_MEMBERS
    terms = _TERMINATORS
    factories = _FACTORIES.setdefault(model, {})
    part: list = []
    i = lo
    while i < hi:
        start = i
        halted = False
        while i < hi:
            if i in leaders and i > start:
                break
            op = instrs[i].opcode
            if op not in members or (op in mpi and not size_one):
                break
            i += 1
            if op is Op.HALT:
                halted = True
                break
        term_i = -1
        if (
            not halted
            and i > start
            and i < hi
            and instrs[i].opcode in terms
        ):
            term_i = i
            i += 1
        k_members = (term_i if term_i >= 0 else i) - start
        k_total = k_members + (term_i >= 0)
        if k_total >= MIN_RUN:
            m_end = start + k_members
            term_op = instrs[term_i].opcode if term_i >= 0 else None
            key = (
                text[addrs[start] : addrs[m_end] if m_end < n else len(text)],
                term_op,
                size_one,
            )
            factory = factories.get(key, _MISS)
            if factory is _MISS:
                vm.fuse_misses += 1
                factory = _compile_run(
                    instrs, costs, start, k_members, term_i, size,
                    branch_extra,
                )
                factories[key] = factory
            elif factory is not None:
                vm.fuse_hits += 1
            if factory is not None:
                part.append(
                    (
                        start - lo,
                        k_total,
                        term_i - lo if term_i >= 0 else -1,
                        term_op,
                        factory,
                    )
                )
            else:
                # Emission refused a member: rescan past the first
                # instruction so a fusable suffix still gets found.
                i = start + 1
        elif i == start:
            i += 1  # non-fusable: stays on the per-instruction path
    return part


def _instantiate(vm, fcode, covered, lo: int, part, state, halt) -> None:
    """Bind one span's partition to this load: resolve the terminator
    targets from the patched text and call each run's factory."""
    instrs = vm._instrs
    addrs = vm._instr_addrs
    n = len(instrs)
    rank = vm.rank
    size = vm.size
    for rel, k_total, term_rel, term_op, factory in part:
        start = lo + rel
        targets: tuple = ()
        if term_rel >= 0:
            ti = lo + term_rel
            if term_op is Op.CALL:
                targets = (
                    vm._branch_index(instrs[ti].operands[0], addrs[ti]),
                    addrs[ti + 1] if ti + 1 < n else -1,
                )
            elif term_op is not Op.RET:
                targets = (
                    vm._branch_index(instrs[ti].operands[0], addrs[ti]),
                )
        fcode[start] = factory(*state, targets, rank, size, halt)
        if covered is not None:
            for c in range(start, start + k_total):
                covered[c] = 1


def build_fcode(vm, bounds, halt) -> tuple[list, bytearray]:
    """Build the fused dispatch array for *vm*'s freshly loaded program.

    ``bounds`` are the instruction indices that start a new segment (runs
    never cross them: instrumented block boundaries are the natural
    fusion seams).  Returns ``(fcode, covered)``: ``fcode`` is the list
    the VM's fused loop indexes — a fused closure at every run head,
    None everywhere else (interior entries single-step the reference
    closures) — and ``covered[i]`` flags every instruction inside a
    fused run, so the loader may defer compiling its reference closure.
    """
    instrs = vm._instrs
    n = len(instrs)
    fcode: list = [None] * n
    covered = bytearray(n)
    state = _vm_state(vm)
    # Basic-block leaders: every branch/call target starts its own run,
    # so dynamic control transfers always land on a fused head instead
    # of single-stepping through a run interior.
    a2i = vm._addr2idx
    terms = _TERMINATORS
    leaders = set()
    for ins in instrs:
        op = ins.opcode
        if op in terms and op is not Op.RET:
            t = a2i.get(ins.operands[0].value)
            if t is not None:
                leaders.add(t)
    edges = list(bounds) + [n]
    for b in range(len(edges) - 1):
        lo = edges[b]
        part = _scan_span(vm, lo, edges[b + 1], leaders)
        if part:
            _instantiate(vm, fcode, covered, lo, part, state, halt)
    return fcode, covered


def build_fcode_cached(vm, spans, partitions: dict, halt) -> list:
    """Segment-path variant of :func:`build_fcode` with memoized runs.

    ``spans`` is the load's ``(seg_bytes, lo, hi)`` tiling and
    ``partitions`` the compiled-segment cache's template-keyed partition
    store.  A segment template's run partition depends only on its own
    instruction sequence: member operands are final in the template
    bytes, terminator *targets* stay outside the partition, and interior
    run leaders can only come from the segment's own branches (original
    branches target block starts — segment heads — and snippet branches
    are intra-block).  So the scan runs once per template and every
    rebind merely re-resolves targets and re-binds factories.

    Run interiors are never marked for lazy compilation here: the
    segment path shares reference closures through the compiled-segment
    cache, which must stay fully populated.
    """
    instrs = vm._instrs
    a2i = vm._addr2idx
    n = len(instrs)
    fcode: list = [None] * n
    state = _vm_state(vm)
    terms = _TERMINATORS
    for seg_bytes, lo, hi in spans:
        part = partitions.get(seg_bytes)
        if part is None:
            leaders = set()
            for i in range(lo, hi):
                ins = instrs[i]
                op = ins.opcode
                if op in terms and op is not Op.RET:
                    t = a2i.get(ins.operands[0].value)
                    if t is not None and lo < t < hi:
                        leaders.add(t)
            part = _scan_span(vm, lo, hi, leaders)
            partitions[seg_bytes] = part
        else:
            vm.fuse_hits += len(part)
        if part:
            _instantiate(vm, fcode, None, lo, part, state, halt)
    return fcode
