"""The interpreter.

Programs are *pre-compiled* at load time: every decoded instruction
becomes a specialized Python closure that mutates the machine state and
returns the index of the next instruction.  Branch targets are resolved
to instruction indices once, immediates are folded into the closures, and
the execution loop is nothing but ``idx = code[idx](idx)``.

The machine model: every closure adds its instruction's cycle cost (base
cost from the opcode table plus a per-memory-operand charge priced by
access width).  Taken branches pay one extra cycle.  These cycles are the
deterministic stand-in for the paper's wall-clock measurements.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field

from repro.binary.model import Program
from repro.fpbits import ieee, narrow
from repro.fpbits.ieee import (
    bits_to_double,
    bits_to_single,
    double_to_bits,
    single_to_bits,
)
from repro.isa.encode import decode_instruction, encoded_length
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    Op,
    OPCODE_INFO,
    RED_MAX,
    RED_MIN,
    RED_SUM,
)
from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.telemetry import NULL_TELEMETRY
from repro.vm import fuse
from repro.vm.costs import DEFAULT_COST_MODEL, CostModel
from repro.vm.errors import CollectiveYield, VmTimeout, VmTrap

#: escape hatch: set REPRO_NO_FUSE=1 to force the per-instruction
#: reference loop everywhere (used by the dispatch microbenchmark and
#: when bisecting a suspected specialization bug).
_NO_FUSE = bool(os.environ.get("REPRO_NO_FUSE"))

_M64 = 0xFFFFFFFFFFFFFFFF
_M32 = 0xFFFFFFFF
_SIGN64 = 1 << 63
_HI32 = 0xFFFFFFFF00000000

#: x86 "integer indefinite" result for unrepresentable FP->int conversions.
_INT_INDEFINITE = 0x8000000000000000

_XORSHIFT_MULT = 2685821657736338717


class _Halt(Exception):
    pass


_HALT = _Halt()


class _PendingTrap(VmTrap):
    """Execution fault raised inside a position-independent cached closure.

    Cached closures are shared between programs, so they cannot embed the
    faulting instruction's text address; :meth:`VM.resume` stamps the
    current program's address on before the trap escapes (the resulting
    message is identical to an uncached VM's)."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.core = message


def _s64(v: int) -> int:
    return v - 0x10000000000000000 if v & _SIGN64 else v


def _u64(v: int) -> int:
    return v & _M64


@dataclass(slots=True)
class ExecResult:
    """Outcome of a program run."""

    outputs: list
    cycles: int
    steps: int
    halted: bool = True
    #: text address -> execution count (only when profiling was enabled)
    exec_counts: dict = field(default_factory=dict)

    def values(self) -> list:
        """Outputs decoded to Python numbers (flag-transparent)."""
        from repro.vm.outputs import decode_outputs

        return decode_outputs(self.outputs)


# Scalar double binary ops: dst.lo = fn(dst.lo, src64).
_FPD_BIN = {
    Op.ADDSD: ieee.double_add,
    Op.SUBSD: ieee.double_sub,
    Op.MULSD: ieee.double_mul,
    Op.DIVSD: ieee.double_div,
    Op.MINSD: ieee.double_min,
    Op.MAXSD: ieee.double_max,
}
# Scalar double unary ops: dst.lo = fn(src64).
_FPD_UN = {
    Op.SQRTSD: ieee.double_sqrt,
    Op.ABSSD: ieee.double_abs,
    Op.NEGSD: ieee.double_neg,
    Op.SINSD: ieee.double_sin,
    Op.COSSD: ieee.double_cos,
    Op.EXPSD: ieee.double_exp,
    Op.LOGSD: ieee.double_log,
}
# Scalar single binary ops on 32-bit patterns.
_FPS_BIN = {
    Op.ADDSS: ieee.single_add,
    Op.SUBSS: ieee.single_sub,
    Op.MULSS: ieee.single_mul,
    Op.DIVSS: ieee.single_div,
    Op.MINSS: ieee.single_min,
    Op.MAXSS: ieee.single_max,
}
_FPS_UN = {
    Op.SQRTSS: ieee.single_sqrt,
    Op.ABSSS: ieee.single_abs,
    Op.NEGSS: ieee.single_neg,
    Op.SINSS: ieee.single_sin,
    Op.COSSS: ieee.single_cos,
    Op.EXPSS: ieee.single_exp,
    Op.LOGSS: ieee.single_log,
}
# Scalar narrow (bfloat16 / binary16) binary ops on 16-bit patterns.
# Same slot discipline as the SS family: the result is written into the
# low 32 bits (16-bit pattern zero-extended) and the upper 32 bits are
# preserved, which is what keeps the per-width replacement sentinels
# alive in the high word.
_FPN_BIN = {
    Op.ADDBF: narrow.bf16_add,
    Op.SUBBF: narrow.bf16_sub,
    Op.MULBF: narrow.bf16_mul,
    Op.DIVBF: narrow.bf16_div,
    Op.MINBF: narrow.bf16_min,
    Op.MAXBF: narrow.bf16_max,
    Op.ADDHF: narrow.f16_add,
    Op.SUBHF: narrow.f16_sub,
    Op.MULHF: narrow.f16_mul,
    Op.DIVHF: narrow.f16_div,
    Op.MINHF: narrow.f16_min,
    Op.MAXHF: narrow.f16_max,
}
_FPN_UN = {
    Op.SQRTBF: narrow.bf16_sqrt,
    Op.ABSBF: narrow.bf16_abs,
    Op.NEGBF: narrow.bf16_neg,
    Op.SINBF: narrow.bf16_sin,
    Op.COSBF: narrow.bf16_cos,
    Op.EXPBF: narrow.bf16_exp,
    Op.LOGBF: narrow.bf16_log,
    Op.SQRTHF: narrow.f16_sqrt,
    Op.ABSHF: narrow.f16_abs,
    Op.NEGHF: narrow.f16_neg,
    Op.SINHF: narrow.f16_sin,
    Op.COSHF: narrow.f16_cos,
    Op.EXPHF: narrow.f16_exp,
    Op.LOGHF: narrow.f16_log,
}
# Narrow decode/encode pairs for the compare and convert handlers.
_FPN_CODEC = {
    "bf": (narrow.bits_to_bf16, narrow.bf16_to_bits),
    "hf": (narrow.bits_to_f16, narrow.f16_to_bits),
}
# Packed double: applied to each 64-bit lane.
_PD_BIN = {
    Op.ADDPD: ieee.double_add,
    Op.SUBPD: ieee.double_sub,
    Op.MULPD: ieee.double_mul,
    Op.DIVPD: ieee.double_div,
}
# Packed single: applied to each 32-bit half of each lane.
_PS_BIN = {
    Op.ADDPS: ieee.single_add,
    Op.SUBPS: ieee.single_sub,
    Op.MULPS: ieee.single_mul,
    Op.DIVPS: ieee.single_div,
}

_INT_BIN_PLAIN = {
    Op.ADD: lambda a, b: (a + b) & _M64,
    Op.SUB: lambda a, b: (a - b) & _M64,
    Op.IMUL: lambda a, b: (a * b) & _M64,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: (a << (b & 63)) & _M64,
    Op.SHR: lambda a, b: a >> (b & 63),
    Op.SAR: lambda a, b: (_s64(a) >> (b & 63)) & _M64,
}


def _idiv(a: int, b: int) -> int:
    if b == 0:
        raise VmTrap("integer division by zero")
    sa, sb = _s64(a), _s64(b)
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & _M64


def _irem(a: int, b: int) -> int:
    if b == 0:
        raise VmTrap("integer division by zero")
    sa, sb = _s64(a), _s64(b)
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & _M64


#: memo for :func:`_static_cost`.  The cost is a pure function of
#: (opcode, operands, model) — all hashable and drawn from a small set of
#: shapes that repeat across every rewrite of the same program — so one
#: dict hit replaces the cost-table lookup and operand scan.
_COST_CACHE: dict = {}


def _static_cost(instr: Instruction, model: CostModel) -> int:
    """Fall-through cycle cost of one instruction (position-independent)."""
    key = (instr.opcode, instr.operands, model)
    cost = _COST_CACHE.get(key)
    if cost is None:
        info = OPCODE_INFO[instr.opcode]
        cost = model.op_cost(instr.opcode)
        for o in instr.operands:
            if isinstance(o, Mem):
                cost += model.mem_cost(info.mem_width, o.base == 14)
        _COST_CACHE[key] = cost
    return cost


def _harvest_blocks(program: Program) -> list[Instruction] | None:
    """The program's instructions from its CFG blocks, or None.

    Programs assembled by :class:`~repro.asm.builder.AsmBuilder` carry
    their decoded instructions in ``fn.blocks`` — the loader reuses them
    instead of decoding the text again.  The harvest is verified against
    the text layout (every address in sequence, total length matching),
    falling back to a fresh decode on any mismatch, so hand-built or
    CFG-less programs behave exactly as before.
    """
    fns = program.functions
    if not fns:
        return None
    out: list[Instruction] = []
    offset = 0
    for fn in fns:
        if not fn.blocks and fn.entry < fn.end:
            return None
        for block in fn.blocks:
            for instr in block.instructions:
                if instr.addr != offset:
                    return None
                out.append(instr)
                offset += encoded_length(instr)
    return out if offset == len(program.text) else None


class _SegInstr:
    """One instruction of a cached segment.

    ``cacheable`` is False exactly for control-flow transfers (jmp / jcc /
    call): their closures embed resolved target indices and return
    addresses, which depend on where the segment landed in the final
    layout.  Everything else advances ``idx + 1`` relative to wherever it
    sits, so its compiled closure can be reused verbatim."""

    __slots__ = ("instr", "off", "cost", "cacheable", "closure")

    def __init__(self, instr: Instruction, off: int, cost: int, cacheable: bool) -> None:
        self.instr = instr
        self.off = off
        self.cost = cost
        self.cacheable = cacheable
        self.closure = None


class CompiledSegmentCache:
    """Compiled-closure cache keyed by a segment's *unpatched* bytes.

    The instrumentation cache hands the VM the template byte string of
    every block it assembled (relocation payloads still zeroed).  Those
    bytes are a sound content key: two occurrences decode to the same
    instruction sequence, and the only operands that differ after
    patching belong to the non-cacheable control-flow transfers, which
    are re-decoded from the patched text and rebuilt on every load.

    Closures capture one VM's state arrays by reference, so a cache is
    bound to a single VM for its whole life (:class:`Machine` enforces
    this).  ``hits``/``misses`` count segment-level lookups.
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.hits = 0
        self.misses = 0
        self._segments: dict[bytes, list[_SegInstr]] = {}
        #: template bytes -> fused-run partition (see fuse.build_fcode_cached);
        #: sound per-template for the same reason the closure cache is, and
        #: safe to share across loads because terminator targets stay out.
        self._fuse_partitions: dict[bytes, list] = {}

    def lookup(self, seg_bytes: bytes) -> list[_SegInstr]:
        entry = self._segments.get(seg_bytes)
        if entry is None:
            self.misses += 1
            entry = self._decode_segment(seg_bytes)
            self._segments[seg_bytes] = entry
        else:
            self.hits += 1
        return entry

    def _decode_segment(self, seg_bytes: bytes) -> list[_SegInstr]:
        out: list[_SegInstr] = []
        model = self.cost_model
        offset = 0
        n = len(seg_bytes)
        while offset < n:
            instr, size = decode_instruction(seg_bytes, offset)
            info = OPCODE_INFO[instr.opcode]
            out.append(
                _SegInstr(
                    instr,
                    offset,
                    _static_cost(instr, model),
                    not (info.is_call or info.is_branch),
                )
            )
            offset += size
        return out


class VM:
    """One virtual machine instance executing one Program.

    Parameters
    ----------
    program:
        The program to run.
    stack_words:
        Stack size in 64-bit cells, placed above the data image.
    seed:
        Deterministic seed for the ``rand`` opcode (xorshift64*).
    rank, size:
        MPI identity.  With ``size == 1`` the collective opcodes are local
        no-ops; with ``size > 1`` they raise :class:`CollectiveYield` so a
        scheduler can coordinate ranks.
    max_steps:
        Hard budget on executed instructions (guards runaway configs).
    profile:
        Record per-address execution counts (needed for the search's
        prioritization and the dynamic-replacement metric).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`.  When enabled, the
        VM counts executions per instruction (same mechanism the
        profiler uses — cycle accounting itself is untouched, so costs
        are byte-identical with telemetry on or off), emits a
        ``vm.trap`` event on any hard fault, and :meth:`publish` reports
        the per-opcode execution/cycle census as a ``vm.opcodes`` event.
    observer:
        Optional execution observer (see :mod:`repro.analysis`): an
        object whose ``wrap(vm, index, instr, addr, closure)`` may
        return a replacement closure for instructions it wants to watch
        (or None to leave the instruction alone).  Wrappers are applied
        *after* compilation, outside the shared segment cache — a VM
        with an observer always compiles cold so cached closures stay
        pristine.  Detached-is-free: with ``observer=None`` the hook is
        a single None check at load time and the execution loop is
        untouched.  Observers must not mutate architectural state;
        outputs, cycle counts, step counts and trap addresses are
        identical with the hook attached or not (asserted by
        tests/vm/test_observer_parity.py).
    """

    def __init__(
        self,
        program: Program,
        stack_words: int = 8192,
        seed: int = 0x9E3779B97F4A7C15,
        rank: int = 0,
        size: int = 1,
        max_steps: int = 200_000_000,
        profile: bool = False,
        cost_model: CostModel | None = None,
        telemetry=None,
        segment_cache: CompiledSegmentCache | None = None,
        segments=None,
        observer=None,
        fused: bool = True,
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        if not 0 <= rank < size:
            raise ValueError("rank out of range")
        if observer is not None:
            # Observer wrappers must never leak into the shared closure
            # cache; an observed VM always compiles cold.
            segment_cache = None
            segments = None
        self._observer = observer
        self.program = program
        self.rank = rank
        self.size = size
        self.max_steps = max_steps
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.profile = profile
        self.cost_model = cost_model or DEFAULT_COST_MODEL

        self.mem = list(program.data_image) + [0] * stack_words
        self.stack_limit = program.data_words
        self.gpr = [0] * 16
        self.gpr[15] = len(self.mem)  # stack pointer: one past the top
        self.xmm_lo = [0] * 16
        self.xmm_hi = [0] * 16
        self.flags = [0, 0, 0]  # zf, lt, unord
        self.outputs: list = []
        self._seed0 = seed & _M64 or 1
        self.rng = [self._seed0]
        self._cyc = [0]
        self.steps = 0
        self.finished = False
        #: steps-left scratch cell shared with the fused closures; only
        #: meaningful inside one _resume_fused call.
        self._sl = [0]
        self._fused = fused and not _NO_FUSE
        self._fcode = None
        self.fuse_hits = 0
        self.fuse_misses = 0

        self._data_image0 = list(program.data_image)
        self._stack_zero = [0] * stack_words
        self._segment_cache = segment_cache
        self._instrs: list[Instruction] = []
        #: text address of each instruction (``_instrs[i].addr`` may be
        #: segment-relative when the instruction came out of the cache)
        self._instr_addrs: list[int] = []
        self._addr2idx: dict[int, int] = {}
        #: static (fall-through) cost per instruction, used by the opcode
        #: census; never consulted by the execution loop.
        self._inst_costs: list[int] = []
        self._code: list = []
        self._load(program, segments)

    # -- public API -----------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self._cyc[0]

    def run(self) -> ExecResult:
        """Run from the entry point to HALT (single-rank convenience)."""
        if self.size != 1:
            raise VmTrap("VM.run() is single-rank; use repro.mpi for size > 1")
        self.resume(self._entry_idx)
        return self.result()

    def resume(self, index: int) -> bool:
        """Execute from instruction *index*; True on HALT.

        In multi-rank mode a :class:`CollectiveYield` escapes to the caller
        (the rank scheduler) with the resume index inside.
        """
        if (
            self._fcode is not None
            and not self.profile
            and not self.telemetry.enabled
        ):
            # Fast path: fused superinstruction dispatch.  Profiling,
            # telemetry counting and observers deoptimize to the
            # reference loop below (they need per-instruction hooks).
            return self._resume_fused(index)
        code = self._code
        counts = self._counts
        remaining = self.max_steps - self.steps
        n = 0
        try:
            if self.profile or self.telemetry.enabled:
                while True:
                    n += 1
                    if n > remaining:
                        raise VmTimeout(f"step budget exceeded ({self.max_steps})")
                    counts[index] += 1
                    index = code[index](index)
            else:
                # Same step accounting as the counting loop above: a halt
                # or trap during iteration n leaves the loop variable at
                # n; running the budget dry charges remaining + 1 (or a
                # single step when the budget was already exhausted).
                if remaining > 0:
                    for n in range(1, remaining + 1):
                        index = code[index](index)
                    n = remaining + 1
                else:
                    n = 1
                raise VmTimeout(f"step budget exceeded ({self.max_steps})")
        except _Halt:
            self.steps += n
            self.finished = True
            # _HALT is a module-level singleton: drop the traceback it
            # just acquired, or it pins the whole raising frame stack
            # (and everything those frames reference) until the next run.
            _HALT.__traceback__ = None
            return True
        except CollectiveYield:
            self.steps += n
            raise
        except VmTrap as exc:
            self.steps += n
            if type(exc) is _PendingTrap:
                exc = VmTrap(exc.core, self._instr_addrs[index])
            self.telemetry.emit(
                "vm.trap",
                message=str(exc),
                addr=exc.addr,
                rank=self.rank,
                steps=self.steps,
            )
            raise exc from None

    def _resume_fused(self, index: int) -> bool:
        """Execute from *index* through the fused dispatch array.

        ``_fcode`` holds a fused closure at every run head and None
        everywhere else (run interiors, control flow the builder left
        alone) — interior entries, e.g. a branch target or a collective
        resume point landing mid-run, single-step the reference closures
        until dispatch reaches the next run head.  The steps-left cell
        ``_sl`` carries the budget: fused runs debit it in bulk and
        repay the unexecuted suffix on any early exit, so ``steps`` is
        exact to the instruction on every path (asserted against the
        reference loop by tests/vm/test_fused_parity.py).
        """
        fcode = self._fcode
        code = self._code
        sl = self._sl
        remaining = self.max_steps - self.steps
        sl[0] = remaining
        try:
            while True:
                f = fcode[index]
                if f is not None:
                    index = f(index)
                elif sl[0] > 0:
                    sl[0] -= 1
                    index = code[index](index)
                else:
                    raise VmTimeout(
                        f"step budget exceeded ({self.max_steps})"
                    )
        except _Halt:
            self.steps += remaining - sl[0]
            self.finished = True
            _HALT.__traceback__ = None
            return True
        except VmTimeout as exc:
            # The attempted step past the budget is charged, matching
            # the reference loop's n = remaining + 1 accounting.
            self.steps += remaining - sl[0] + 1
            self.telemetry.emit(
                "vm.trap",
                message=str(exc),
                addr=exc.addr,
                rank=self.rank,
                steps=self.steps,
            )
            raise
        except CollectiveYield:
            self.steps += remaining - sl[0]
            raise
        except VmTrap as exc:
            self.steps += remaining - sl[0]
            if type(exc) is _PendingTrap:
                exc = VmTrap(exc.core, self._instr_addrs[index])
            elif type(exc) is fuse.FusedTrap:
                exc = VmTrap(exc.core, self._instr_addrs[index + exc.rel])
            self.telemetry.emit(
                "vm.trap",
                message=str(exc),
                addr=exc.addr,
                rank=self.rank,
                steps=self.steps,
            )
            raise exc from None

    def _fused_tail(self, idx: int):
        """Deoptimized tail: the next fused run is larger than the
        remaining budget, so no fused entry can be correct — single-step
        the reference closures until the budget expires or a trap, halt
        or collective yield wins the race.  Never returns normally."""
        code = self._code
        sl = self._sl
        try:
            while True:
                if sl[0] <= 0:
                    raise VmTimeout(
                        f"step budget exceeded ({self.max_steps})"
                    )
                sl[0] -= 1
                idx = code[idx](idx)
        except _PendingTrap as exc:
            raise VmTrap(exc.core, self._instr_addrs[idx]) from None

    def result(self) -> ExecResult:
        exec_counts = {}
        if self.profile:
            addrs = self._instr_addrs
            exec_counts = {
                addrs[i]: c for i, c in enumerate(self._counts) if c
            }
        return ExecResult(
            outputs=list(self.outputs),
            cycles=self._cyc[0],
            steps=self.steps,
            halted=self.finished,
            exec_counts=exec_counts,
        )

    def entry_index(self) -> int:
        return self._entry_idx

    def opcode_stats(self) -> dict:
        """Per-mnemonic execution/cycle census of everything run so far.

        Cycles are attributed statically (execution count times the
        instruction's fall-through cost), so taken-branch extras and
        collective synchronization jumps are not included — the census
        is a profile shape, not a re-derivation of the exact clock.
        Requires telemetry (or profiling) to have been enabled.
        """
        per: dict[str, list] = {}
        instrs = self._instrs
        costs = self._inst_costs
        for i, count in enumerate(self._counts):
            if not count:
                continue
            mnemonic = OPCODE_INFO[instrs[i].opcode].mnemonic
            entry = per.setdefault(mnemonic, [0, 0])
            entry[0] += count
            entry[1] += count * costs[i]
        return {
            m: {"execs": e, "cycles": c} for m, (e, c) in sorted(per.items())
        }

    def instruction_stats(self, counts=None) -> list:
        """Per-instruction ``(addr, mnemonic, execs, cycles)`` census.

        Same static cycle attribution as :meth:`opcode_stats`, but at
        instruction-address granularity — the substrate for per-site
        profiles.  *counts* overrides the VM's own execution counters
        (an observer's independently collected tallies); by default the
        native ``profile``/telemetry counters are used.  Cold path only:
        nothing here touches the execution loop.
        """
        if counts is None:
            counts = self._counts
        instrs = self._instrs
        addrs = self._instr_addrs
        costs = self._inst_costs
        return [
            (
                addrs[i],
                OPCODE_INFO[instrs[i].opcode].mnemonic,
                count,
                count * costs[i],
            )
            for i, count in enumerate(counts)
            if count
        ]

    def publish(self) -> None:
        """Emit the ``vm.opcodes`` census event (no-op when disabled)."""
        if not self.telemetry.enabled:
            return
        self.telemetry.emit(
            "vm.opcodes",
            program=self.program.name,
            rank=self.rank,
            steps=self.steps,
            cycles=self._cyc[0],
            opcodes=self.opcode_stats(),
        )

    def rebind(self, program: Program, segments=None) -> None:
        """Reset all architectural state in place and load *program*.

        Cached closures captured the state arrays (``mem``, ``gpr``,
        ``xmm_*``, flags, outputs, rng, cycle counter) by reference, so
        the reset mutates them rather than replacing them.  Only legal
        for a program with the same data image and stack size as the one
        this VM was created with — :class:`Machine` checks that.
        """
        if program.data_image != self._data_image0:
            raise ValueError("rebind requires an identical data image")
        mem = self.mem
        dw = self.stack_limit
        mem[:dw] = self._data_image0
        mem[dw:] = self._stack_zero
        self.gpr[:] = [0] * 16
        self.gpr[15] = len(mem)
        self.xmm_lo[:] = [0] * 16
        self.xmm_hi[:] = [0] * 16
        self.flags[:] = (0, 0, 0)
        self.outputs.clear()
        self.rng[0] = self._seed0
        self._cyc[0] = 0
        self.steps = 0
        self.finished = False
        self._load(program, segments)

    # -- compilation -----------------------------------------------------------

    def _load(self, program: Program, segments=None) -> None:
        """(Re)compile *program* into the closure array.

        When *segments* (the instrumentation cache's template tiling) and
        a :class:`CompiledSegmentCache` are both present, position-
        independent closures are fetched from the cache and only
        control-flow transfers are re-decoded from the patched text and
        rebuilt.  Otherwise every instruction is decoded and compiled
        fresh, exactly as the original single-program VM did.
        """
        self.program = program
        instrs = self._instrs
        addrs = self._instr_addrs
        a2i = self._addr2idx
        instrs.clear()
        addrs.clear()
        a2i.clear()  # in place: cached ret closures captured this dict
        cache = self._segment_cache
        text = program.text
        costs: list[int] = []
        #: run fusion seams — instruction indices starting a new segment.
        bounds: list[int] = [0]
        fuse_here = self._fused and self._observer is None
        if segments is None or cache is None:
            model = self.cost_model
            harvested = _harvest_blocks(program)
            if harvested is not None:
                # The linker just decoded these instructions; reuse them
                # instead of decoding the text a second time.
                for instr in harvested:
                    a2i[instr.addr] = len(instrs)
                    instrs.append(instr)
                    addrs.append(instr.addr)
                    costs.append(_static_cost(instr, model))
            else:
                offset = 0
                n = len(text)
                while offset < n:
                    instr, size = decode_instruction(text, offset)
                    a2i[offset] = len(instrs)
                    instrs.append(instr)
                    addrs.append(offset)
                    costs.append(_static_cost(instr, model))
                    offset += size
            self._inst_costs = costs
            self._counts = [0] * len(instrs)
            covered = None
            self._fcode = None
            if fuse_here:
                fcode, covered = fuse.build_fcode(self, bounds, _HALT)
                # A program with no fusable run gains nothing from the
                # fused loop's extra None checks; keep the reference loop.
                self._fcode = fcode if any(fcode) else None
            build = self._build
            if self._fcode is not None:
                # Instructions inside fused runs compile their reference
                # closure lazily — only deopt paths (mid-run resume,
                # budget tail, profile loop) ever dispatch through them.
                lazy = self._lazy
                self._code = [
                    lazy(i) if covered[i] else build(i)
                    for i in range(len(instrs))
                ]
            else:
                self._code = [build(i) for i in range(len(instrs))]
        else:
            entries: list[list[_SegInstr]] = []
            spans: list[tuple[bytes, int, int]] = []
            expect = 0
            for seg_bytes, base in segments:
                if base != expect:
                    raise ValueError("segments do not tile the text section")
                expect += len(seg_bytes)
                entry = cache.lookup(seg_bytes)
                entries.append(entry)
                lo = len(instrs)
                if lo:
                    bounds.append(lo)
                for si in entry:
                    a2i[base + si.off] = len(instrs)
                    instrs.append(si.instr)
                    addrs.append(base + si.off)
                    costs.append(si.cost)
                spans.append((seg_bytes, lo, len(instrs)))
            if expect != len(text):
                raise ValueError("segments do not tile the text section")
            self._inst_costs = costs
            self._counts = [0] * len(instrs)
            code: list = []
            build = self._build
            i = 0
            for entry in entries:
                for si in entry:
                    if si.cacheable:
                        closure = si.closure
                        if closure is None:
                            closure = si.closure = build(i)
                    else:
                        # Target operands were patched at assembly time;
                        # decode the real instruction from the final text.
                        instr, _size = decode_instruction(text, addrs[i])
                        instrs[i] = instr
                        closure = build(i)
                    code.append(closure)
                    i += 1
            self._code = code
            # Fused superinstruction dispatch (see repro.vm.fuse).
            # Observed VMs never fuse: wrappers must see every dispatch.
            if fuse_here:
                fcode = fuse.build_fcode_cached(
                    self, spans, cache._fuse_partitions, _HALT
                )
                self._fcode = fcode if any(fcode) else None
            else:
                self._fcode = None
        observer = self._observer
        if observer is not None:
            code = self._code
            for i, instr in enumerate(instrs):
                wrapped = observer.wrap(self, i, instr, addrs[i], code[i])
                if wrapped is not None:
                    code[i] = wrapped
        self._entry_idx = a2i[program.entry]

    def _lazy(self, i: int):
        """Deferred compile: a stand-in closure that builds instruction
        *i*'s reference closure on its first dispatch and replaces
        itself.  Only instructions covered by a fused run get one, and
        fusion already validated their shape, so the deferral never
        hides a load-time error."""

        def shim(idx):
            closure = self._code[i] = self._build(i)
            return closure(idx)

        return shim

    def _trap(self, message: str, addr: int):
        raise VmTrap(message, addr)

    # operand accessors -------------------------------------------------------

    def _addr_fn(self, m: Mem):
        gpr = self.gpr
        disp = m.disp
        base = m.base
        index = m.index
        scale = m.scale
        if base is None and index is None:
            return lambda: disp
        if index is None:
            return lambda: gpr[base] + disp
        if base is None:
            return lambda: gpr[index] * scale + disp
        return lambda: gpr[base] + gpr[index] * scale + disp

    def _mem_read(self, m: Mem, iaddr: int):
        addrf = self._addr_fn(m)
        mem = self.mem
        top = len(mem)

        def read():
            a = addrf()
            if 0 <= a < top:
                return mem[a]
            raise _PendingTrap(f"memory read out of bounds: {a}")

        return read

    def _mem_write(self, m: Mem, iaddr: int):
        addrf = self._addr_fn(m)
        mem = self.mem
        top = len(mem)

        def write(value):
            a = addrf()
            if 0 <= a < top:
                mem[a] = value
            else:
                raise _PendingTrap(f"memory write out of bounds: {a}")

        return write

    def _src64(self, operand, iaddr: int):
        """Closure producing a 64-bit value from Reg/Imm/Mem."""
        if isinstance(operand, Reg):
            gpr = self.gpr
            i = operand.index
            return lambda: gpr[i]
        if isinstance(operand, Imm):
            v = operand.value & _M64
            return lambda: v
        if isinstance(operand, Mem):
            return self._mem_read(operand, iaddr)
        raise VmTrap(f"bad source operand {operand!r}", iaddr)

    def _xsrc64(self, operand, iaddr: int):
        """Closure producing a 64-bit FP value from Xmm-low-lane or Mem."""
        if isinstance(operand, Xmm):
            xl = self.xmm_lo
            i = operand.index
            return lambda: xl[i]
        if isinstance(operand, Mem):
            return self._mem_read(operand, iaddr)
        raise VmTrap(f"bad FP source operand {operand!r}", iaddr)

    def _xsrc128(self, operand, iaddr: int):
        """Closure producing (lo, hi) lanes from Xmm or 2-cell Mem."""
        if isinstance(operand, Xmm):
            xl, xh = self.xmm_lo, self.xmm_hi
            i = operand.index
            return lambda: (xl[i], xh[i])
        if isinstance(operand, Mem):
            addrf = self._addr_fn(operand)
            mem = self.mem
            top = len(mem)

            def read2():
                a = addrf()
                if 0 <= a and a + 1 < top:
                    return mem[a], mem[a + 1]
                raise _PendingTrap(f"packed memory read out of bounds: {a}")

            return read2
        raise VmTrap(f"bad packed source operand {operand!r}", iaddr)

    # instruction compiler -------------------------------------------------------

    def _build(self, i: int):
        instr = self._instrs[i]
        op = instr.opcode
        info = OPCODE_INFO[op]
        ops = instr.operands
        iaddr = self._instr_addrs[i]
        cost = self._inst_costs[i]

        cyc = self._cyc
        gpr = self.gpr
        xl = self.xmm_lo
        xh = self.xmm_hi
        flags = self.flags
        mem = self.mem
        a2i = self._addr2idx

        # ---- control ---------------------------------------------------------
        if op is Op.NOP:
            def h_nop(idx, cyc=cyc, cost=cost):
                cyc[0] += cost
                return idx + 1
            return h_nop

        if op is Op.HALT:
            def h_halt(idx, cyc=cyc, cost=cost):
                cyc[0] += cost
                raise _HALT
            return h_halt

        if op is Op.JMP:
            target = self._branch_index(ops[0], iaddr)
            def h_jmp(idx, cyc=cyc, cost=cost + self.cost_model.branch_taken_extra, target=target):
                cyc[0] += cost
                return target
            return h_jmp

        if info.is_cond_branch:
            target = self._branch_index(ops[0], iaddr)
            cond = _COND_TABLE[op]
            taken_cost = cost + self.cost_model.branch_taken_extra
            def h_jcc(idx, cyc=cyc, cost=cost, target=target, flags=flags, cond=cond,
                      taken_cost=taken_cost):
                if cond(flags):
                    cyc[0] += taken_cost
                    return target
                cyc[0] += cost
                return idx + 1
            return h_jcc

        if op is Op.CALL:
            target = self._branch_index(ops[0], iaddr)
            next_addr = (
                self._instr_addrs[i + 1] if i + 1 < len(self._instrs) else -1
            )
            limit = self.stack_limit
            def h_call(idx, cyc=cyc, cost=cost, target=target, gpr=gpr, mem=mem,
                       next_addr=next_addr, limit=limit):
                sp = gpr[15] - 1
                if sp < limit:
                    raise _PendingTrap("stack overflow on call")
                mem[sp] = next_addr
                gpr[15] = sp
                cyc[0] += cost
                return target
            return h_call

        if op is Op.RET:
            top = len(mem)
            def h_ret(idx, cyc=cyc, cost=cost, gpr=gpr, mem=mem, a2i=a2i, top=top):
                sp = gpr[15]
                if sp >= top:
                    raise _PendingTrap("stack underflow on ret")
                ra = mem[sp]
                gpr[15] = sp + 1
                t = a2i.get(ra)
                if t is None:
                    raise _PendingTrap(f"return to non-instruction address {ra:#x}")
                cyc[0] += cost
                return t
            return h_ret

        if op is Op.OUTI:
            r = ops[0].index
            outputs = self.outputs
            def h_outi(idx, cyc=cyc, cost=cost, gpr=gpr, outputs=outputs, r=r):
                outputs.append(("i", gpr[r]))
                cyc[0] += cost
                return idx + 1
            return h_outi

        if op is Op.OUTSD:
            x = ops[0].index
            outputs = self.outputs
            def h_outsd(idx, cyc=cyc, cost=cost, xl=xl, outputs=outputs, x=x):
                outputs.append(("d", xl[x]))
                cyc[0] += cost
                return idx + 1
            return h_outsd

        if op is Op.OUTSS:
            x = ops[0].index
            outputs = self.outputs
            def h_outss(idx, cyc=cyc, cost=cost, xl=xl, outputs=outputs, x=x):
                outputs.append(("s", xl[x] & _M32))
                cyc[0] += cost
                return idx + 1
            return h_outss

        if op is Op.RAND:
            r = ops[0].index
            rng = self.rng
            def h_rand(idx, cyc=cyc, cost=cost, gpr=gpr, rng=rng, r=r):
                s = rng[0]
                s ^= s >> 12
                s = (s ^ (s << 25)) & _M64
                s ^= s >> 27
                rng[0] = s
                gpr[r] = (s * _XORSHIFT_MULT) & _M64
                cyc[0] += cost
                return idx + 1
            return h_rand

        # ---- integer ---------------------------------------------------------
        if op is Op.MOV:
            dst, src = ops
            if isinstance(dst, Reg):
                d = dst.index
                if isinstance(src, Reg):
                    s = src.index
                    def h_movrr(idx, cyc=cyc, cost=cost, gpr=gpr, d=d, s=s):
                        gpr[d] = gpr[s]
                        cyc[0] += cost
                        return idx + 1
                    return h_movrr
                if isinstance(src, Imm):
                    v = src.value & _M64
                    def h_movri(idx, cyc=cyc, cost=cost, gpr=gpr, d=d, v=v):
                        gpr[d] = v
                        cyc[0] += cost
                        return idx + 1
                    return h_movri
                read = self._mem_read(src, iaddr)
                def h_movrm(idx, cyc=cyc, cost=cost, gpr=gpr, d=d, read=read):
                    gpr[d] = read()
                    cyc[0] += cost
                    return idx + 1
                return h_movrm
            write = self._mem_write(dst, iaddr)
            srcf = self._src64(src, iaddr)
            def h_movm(idx, cyc=cyc, cost=cost, write=write, srcf=srcf):
                write(srcf())
                cyc[0] += cost
                return idx + 1
            return h_movm

        if op is Op.LEA:
            d = ops[0].index
            addrf = self._addr_fn(ops[1])
            def h_lea(idx, cyc=cyc, cost=cost, gpr=gpr, d=d, addrf=addrf):
                gpr[d] = addrf() & _M64
                cyc[0] += cost
                return idx + 1
            return h_lea

        if op in _INT_BIN_PLAIN:
            fn = _INT_BIN_PLAIN[op]
            d = ops[0].index
            srcf = self._src64(ops[1], iaddr)
            def h_ibin(idx, cyc=cyc, cost=cost, gpr=gpr, d=d, srcf=srcf, fn=fn):
                gpr[d] = fn(gpr[d], srcf())
                cyc[0] += cost
                return idx + 1
            return h_ibin

        if op is Op.IDIV or op is Op.IREM:
            fn = _idiv if op is Op.IDIV else _irem
            d = ops[0].index
            srcf = self._src64(ops[1], iaddr)
            def h_idiv(idx, cyc=cyc, cost=cost, gpr=gpr, d=d, srcf=srcf, fn=fn):
                gpr[d] = fn(gpr[d], srcf())
                cyc[0] += cost
                return idx + 1
            return h_idiv

        if op is Op.NOT:
            d = ops[0].index
            def h_not(idx, cyc=cyc, cost=cost, gpr=gpr, d=d):
                gpr[d] = gpr[d] ^ _M64
                cyc[0] += cost
                return idx + 1
            return h_not

        if op is Op.NEG:
            d = ops[0].index
            def h_neg(idx, cyc=cyc, cost=cost, gpr=gpr, d=d):
                gpr[d] = (-gpr[d]) & _M64
                cyc[0] += cost
                return idx + 1
            return h_neg

        if op is Op.INC:
            d = ops[0].index
            def h_inc(idx, cyc=cyc, cost=cost, gpr=gpr, d=d):
                gpr[d] = (gpr[d] + 1) & _M64
                cyc[0] += cost
                return idx + 1
            return h_inc

        if op is Op.DEC:
            d = ops[0].index
            def h_dec(idx, cyc=cyc, cost=cost, gpr=gpr, d=d):
                gpr[d] = (gpr[d] - 1) & _M64
                cyc[0] += cost
                return idx + 1
            return h_dec

        if op is Op.CMP:
            d = ops[0].index
            srcf = self._src64(ops[1], iaddr)
            def h_cmp(idx, cyc=cyc, cost=cost, gpr=gpr, flags=flags, d=d, srcf=srcf):
                a = gpr[d]
                b = srcf()
                flags[0] = 1 if a == b else 0
                flags[1] = 1 if _s64(a) < _s64(b) else 0
                flags[2] = 0
                cyc[0] += cost
                return idx + 1
            return h_cmp

        if op is Op.TEST:
            d = ops[0].index
            srcf = self._src64(ops[1], iaddr)
            def h_test(idx, cyc=cyc, cost=cost, gpr=gpr, flags=flags, d=d, srcf=srcf):
                v = gpr[d] & srcf()
                flags[0] = 1 if v == 0 else 0
                flags[1] = (v >> 63) & 1
                flags[2] = 0
                cyc[0] += cost
                return idx + 1
            return h_test

        if op is Op.PUSH:
            srcf = self._src64(ops[0], iaddr)
            limit = self.stack_limit
            def h_push(idx, cyc=cyc, cost=cost, gpr=gpr, mem=mem, srcf=srcf, limit=limit):
                sp = gpr[15] - 1
                if sp < limit:
                    raise _PendingTrap("stack overflow")
                mem[sp] = srcf()
                gpr[15] = sp
                cyc[0] += cost
                return idx + 1
            return h_push

        if op is Op.POP:
            d = ops[0].index
            top = len(mem)
            def h_pop(idx, cyc=cyc, cost=cost, gpr=gpr, mem=mem, d=d, top=top):
                sp = gpr[15]
                if sp >= top:
                    raise _PendingTrap("stack underflow")
                gpr[d] = mem[sp]
                gpr[15] = sp + 1
                cyc[0] += cost
                return idx + 1
            return h_pop

        if op is Op.PUSHX:
            x = ops[0].index
            limit = self.stack_limit
            def h_pushx(idx, cyc=cyc, cost=cost, gpr=gpr, mem=mem, xl=xl, xh=xh,
                        x=x, limit=limit):
                sp = gpr[15] - 2
                if sp < limit:
                    raise _PendingTrap("stack overflow")
                mem[sp] = xl[x]
                mem[sp + 1] = xh[x]
                gpr[15] = sp
                cyc[0] += cost
                return idx + 1
            return h_pushx

        if op is Op.POPX:
            x = ops[0].index
            top = len(mem)
            def h_popx(idx, cyc=cyc, cost=cost, gpr=gpr, mem=mem, xl=xl, xh=xh,
                       x=x, top=top):
                sp = gpr[15]
                if sp + 1 >= top:
                    raise _PendingTrap("stack underflow")
                xl[x] = mem[sp]
                xh[x] = mem[sp + 1]
                gpr[15] = sp + 2
                cyc[0] += cost
                return idx + 1
            return h_popx

        # ---- scalar double -----------------------------------------------------
        if op is Op.MOVSD:
            dst, src = ops
            if isinstance(dst, Xmm):
                d = dst.index
                if isinstance(src, Xmm):
                    s = src.index
                    def h_movsdxx(idx, cyc=cyc, cost=cost, xl=xl, d=d, s=s):
                        xl[d] = xl[s]
                        cyc[0] += cost
                        return idx + 1
                    return h_movsdxx
                read = self._mem_read(src, iaddr)
                def h_movsdxm(idx, cyc=cyc, cost=cost, xl=xl, xh=xh, d=d, read=read):
                    xl[d] = read()
                    xh[d] = 0
                    cyc[0] += cost
                    return idx + 1
                return h_movsdxm
            write = self._mem_write(dst, iaddr)
            s = src.index
            def h_movsdmx(idx, cyc=cyc, cost=cost, xl=xl, s=s, write=write):
                write(xl[s])
                cyc[0] += cost
                return idx + 1
            return h_movsdmx

        if op is Op.MOVAPD:
            dst, src = ops
            if isinstance(dst, Xmm):
                d = dst.index
                read2 = self._xsrc128(src, iaddr)
                def h_movapdx(idx, cyc=cyc, cost=cost, xl=xl, xh=xh, d=d, read2=read2):
                    xl[d], xh[d] = read2()
                    cyc[0] += cost
                    return idx + 1
                return h_movapdx
            addrf = self._addr_fn(dst)
            s = src.index
            top = len(mem)
            def h_movapdm(idx, cyc=cyc, cost=cost, xl=xl, xh=xh, s=s, mem=mem,
                          addrf=addrf, top=top):
                a = addrf()
                if not (0 <= a and a + 1 < top):
                    raise _PendingTrap(f"packed memory write out of bounds: {a}")
                mem[a] = xl[s]
                mem[a + 1] = xh[s]
                cyc[0] += cost
                return idx + 1
            return h_movapdm

        if op in _FPD_BIN:
            fn = _FPD_BIN[op]
            d = ops[0].index
            if isinstance(ops[1], Xmm):
                s = ops[1].index
                def h_fpdxx(idx, cyc=cyc, cost=cost, xl=xl, d=d, s=s, fn=fn):
                    xl[d] = fn(xl[d], xl[s])
                    cyc[0] += cost
                    return idx + 1
                return h_fpdxx
            read = self._mem_read(ops[1], iaddr)
            def h_fpdxm(idx, cyc=cyc, cost=cost, xl=xl, d=d, read=read, fn=fn):
                xl[d] = fn(xl[d], read())
                cyc[0] += cost
                return idx + 1
            return h_fpdxm

        if op in _FPD_UN:
            fn = _FPD_UN[op]
            d = ops[0].index
            srcf = self._xsrc64(ops[1], iaddr)
            def h_fpdun(idx, cyc=cyc, cost=cost, xl=xl, d=d, srcf=srcf, fn=fn):
                xl[d] = fn(srcf())
                cyc[0] += cost
                return idx + 1
            return h_fpdun

        if op is Op.UCOMISD:
            d = ops[0].index
            srcf = self._xsrc64(ops[1], iaddr)
            def h_ucomisd(idx, cyc=cyc, cost=cost, xl=xl, flags=flags, d=d, srcf=srcf):
                a = bits_to_double(xl[d])
                b = bits_to_double(srcf())
                if a != a or b != b:
                    flags[0], flags[1], flags[2] = 1, 0, 1
                else:
                    flags[0] = 1 if a == b else 0
                    flags[1] = 1 if a < b else 0
                    flags[2] = 0
                cyc[0] += cost
                return idx + 1
            return h_ucomisd

        if op is Op.CVTSI2SD:
            d = ops[0].index
            s = ops[1].index
            def h_cvtsi2sd(idx, cyc=cyc, cost=cost, xl=xl, gpr=gpr, d=d, s=s):
                xl[d] = double_to_bits(float(_s64(gpr[s])))
                cyc[0] += cost
                return idx + 1
            return h_cvtsi2sd

        if op is Op.CVTTSD2SI:
            d = ops[0].index
            s = ops[1].index
            def h_cvttsd2si(idx, cyc=cyc, cost=cost, xl=xl, gpr=gpr, d=d, s=s):
                v = bits_to_double(xl[s])
                if v != v or v >= 9.223372036854776e18 or v < -9.223372036854776e18:
                    gpr[d] = _INT_INDEFINITE
                else:
                    gpr[d] = int(v) & _M64
                cyc[0] += cost
                return idx + 1
            return h_cvttsd2si

        if op is Op.CVTSD2SS:
            d = ops[0].index
            s = ops[1].index
            def h_cvtsd2ss(idx, cyc=cyc, cost=cost, xl=xl, d=d, s=s):
                xl[d] = (xl[d] & _HI32) | single_to_bits(bits_to_double(xl[s]))
                cyc[0] += cost
                return idx + 1
            return h_cvtsd2ss

        if op is Op.CVTSS2SD:
            d = ops[0].index
            s = ops[1].index
            def h_cvtss2sd(idx, cyc=cyc, cost=cost, xl=xl, d=d, s=s):
                xl[d] = double_to_bits(bits_to_single(xl[s] & _M32))
                cyc[0] += cost
                return idx + 1
            return h_cvtss2sd

        if op is Op.MOVQXR:
            d = ops[0].index
            s = ops[1].index
            def h_movqxr(idx, cyc=cyc, cost=cost, xl=xl, gpr=gpr, d=d, s=s):
                xl[d] = gpr[s]
                cyc[0] += cost
                return idx + 1
            return h_movqxr

        if op is Op.MOVQRX:
            d = ops[0].index
            s = ops[1].index
            def h_movqrx(idx, cyc=cyc, cost=cost, xl=xl, gpr=gpr, d=d, s=s):
                gpr[d] = xl[s]
                cyc[0] += cost
                return idx + 1
            return h_movqrx

        # ---- packed double -----------------------------------------------------
        if op in _PD_BIN:
            fn = _PD_BIN[op]
            d = ops[0].index
            read2 = self._xsrc128(ops[1], iaddr)
            def h_pd(idx, cyc=cyc, cost=cost, xl=xl, xh=xh, d=d, read2=read2, fn=fn):
                lo, hi = read2()
                xl[d] = fn(xl[d], lo)
                xh[d] = fn(xh[d], hi)
                cyc[0] += cost
                return idx + 1
            return h_pd

        if op is Op.SQRTPD:
            d = ops[0].index
            read2 = self._xsrc128(ops[1], iaddr)
            sqrt = ieee.double_sqrt
            def h_sqrtpd(idx, cyc=cyc, cost=cost, xl=xl, xh=xh, d=d, read2=read2, sqrt=sqrt):
                lo, hi = read2()
                xl[d] = sqrt(lo)
                xh[d] = sqrt(hi)
                cyc[0] += cost
                return idx + 1
            return h_sqrtpd

        # ---- scalar single -----------------------------------------------------
        if op is Op.MOVSS:
            dst, src = ops
            if isinstance(dst, Xmm):
                d = dst.index
                if isinstance(src, Xmm):
                    s = src.index
                    def h_movssxx(idx, cyc=cyc, cost=cost, xl=xl, d=d, s=s):
                        xl[d] = (xl[d] & _HI32) | (xl[s] & _M32)
                        cyc[0] += cost
                        return idx + 1
                    return h_movssxx
                read = self._mem_read(src, iaddr)
                def h_movssxm(idx, cyc=cyc, cost=cost, xl=xl, xh=xh, d=d, read=read):
                    xl[d] = read() & _M32
                    xh[d] = 0
                    cyc[0] += cost
                    return idx + 1
                return h_movssxm
            addrf = self._addr_fn(dst)
            s = src.index
            top = len(mem)
            def h_movssmx(idx, cyc=cyc, cost=cost, xl=xl, s=s, mem=mem, addrf=addrf, top=top):
                a = addrf()
                if not 0 <= a < top:
                    raise _PendingTrap(f"memory write out of bounds: {a}")
                mem[a] = (mem[a] & _HI32) | (xl[s] & _M32)
                cyc[0] += cost
                return idx + 1
            return h_movssmx

        if op in _FPS_BIN:
            fn = _FPS_BIN[op]
            d = ops[0].index
            srcf = self._xsrc64(ops[1], iaddr)
            def h_fps(idx, cyc=cyc, cost=cost, xl=xl, d=d, srcf=srcf, fn=fn):
                v = xl[d]
                xl[d] = (v & _HI32) | fn(v & _M32, srcf() & _M32)
                cyc[0] += cost
                return idx + 1
            return h_fps

        if op in _FPS_UN:
            fn = _FPS_UN[op]
            d = ops[0].index
            srcf = self._xsrc64(ops[1], iaddr)
            def h_fpsun(idx, cyc=cyc, cost=cost, xl=xl, d=d, srcf=srcf, fn=fn):
                xl[d] = (xl[d] & _HI32) | fn(srcf() & _M32)
                cyc[0] += cost
                return idx + 1
            return h_fpsun

        if op is Op.UCOMISS:
            d = ops[0].index
            srcf = self._xsrc64(ops[1], iaddr)
            def h_ucomiss(idx, cyc=cyc, cost=cost, xl=xl, flags=flags, d=d, srcf=srcf):
                a = bits_to_single(xl[d] & _M32)
                b = bits_to_single(srcf() & _M32)
                if a != a or b != b:
                    flags[0], flags[1], flags[2] = 1, 0, 1
                else:
                    flags[0] = 1 if a == b else 0
                    flags[1] = 1 if a < b else 0
                    flags[2] = 0
                cyc[0] += cost
                return idx + 1
            return h_ucomiss

        if op is Op.CVTSI2SS:
            d = ops[0].index
            s = ops[1].index
            def h_cvtsi2ss(idx, cyc=cyc, cost=cost, xl=xl, gpr=gpr, d=d, s=s):
                xl[d] = (xl[d] & _HI32) | single_to_bits(float(_s64(gpr[s])))
                cyc[0] += cost
                return idx + 1
            return h_cvtsi2ss

        if op is Op.CVTTSS2SI:
            d = ops[0].index
            s = ops[1].index
            def h_cvttss2si(idx, cyc=cyc, cost=cost, xl=xl, gpr=gpr, d=d, s=s):
                v = bits_to_single(xl[s] & _M32)
                if v != v or v >= 9.223372036854776e18 or v < -9.223372036854776e18:
                    gpr[d] = _INT_INDEFINITE
                else:
                    gpr[d] = int(v) & _M64
                cyc[0] += cost
                return idx + 1
            return h_cvttss2si

        # ---- scalar narrow (bfloat16 / binary16) -------------------------------
        if op in _FPN_BIN:
            fn = _FPN_BIN[op]
            d = ops[0].index
            srcf = self._xsrc64(ops[1], iaddr)
            def h_fpn(idx, cyc=cyc, cost=cost, xl=xl, d=d, srcf=srcf, fn=fn):
                v = xl[d]
                xl[d] = (v & _HI32) | fn(v & 0xFFFF, srcf() & 0xFFFF)
                cyc[0] += cost
                return idx + 1
            return h_fpn

        if op in _FPN_UN:
            fn = _FPN_UN[op]
            d = ops[0].index
            srcf = self._xsrc64(ops[1], iaddr)
            def h_fpnun(idx, cyc=cyc, cost=cost, xl=xl, d=d, srcf=srcf, fn=fn):
                xl[d] = (xl[d] & _HI32) | fn(srcf() & 0xFFFF)
                cyc[0] += cost
                return idx + 1
            return h_fpnun

        if op is Op.UCOMIBF or op is Op.UCOMIHF:
            dec = _FPN_CODEC["bf" if op is Op.UCOMIBF else "hf"][0]
            d = ops[0].index
            srcf = self._xsrc64(ops[1], iaddr)
            def h_ucomin(idx, cyc=cyc, cost=cost, xl=xl, flags=flags, d=d,
                         srcf=srcf, dec=dec):
                a = dec(xl[d] & 0xFFFF)
                b = dec(srcf() & 0xFFFF)
                if a != a or b != b:
                    flags[0], flags[1], flags[2] = 1, 0, 1
                else:
                    flags[0] = 1 if a == b else 0
                    flags[1] = 1 if a < b else 0
                    flags[2] = 0
                cyc[0] += cost
                return idx + 1
            return h_ucomin

        if op is Op.CVTSI2BF or op is Op.CVTSI2HF:
            enc = _FPN_CODEC["bf" if op is Op.CVTSI2BF else "hf"][1]
            d = ops[0].index
            s = ops[1].index
            def h_cvtsi2n(idx, cyc=cyc, cost=cost, xl=xl, gpr=gpr, d=d, s=s, enc=enc):
                xl[d] = (xl[d] & _HI32) | enc(float(_s64(gpr[s])))
                cyc[0] += cost
                return idx + 1
            return h_cvtsi2n

        if op is Op.CVTTBF2SI or op is Op.CVTTHF2SI:
            dec = _FPN_CODEC["bf" if op is Op.CVTTBF2SI else "hf"][0]
            d = ops[0].index
            s = ops[1].index
            def h_cvttn2si(idx, cyc=cyc, cost=cost, xl=xl, gpr=gpr, d=d, s=s, dec=dec):
                v = dec(xl[s] & 0xFFFF)
                if v != v or v >= 9.223372036854776e18 or v < -9.223372036854776e18:
                    gpr[d] = _INT_INDEFINITE
                else:
                    gpr[d] = int(v) & _M64
                cyc[0] += cost
                return idx + 1
            return h_cvttn2si

        if op is Op.CVTSD2BF or op is Op.CVTSD2HF:
            enc = _FPN_CODEC["bf" if op is Op.CVTSD2BF else "hf"][1]
            d = ops[0].index
            s = ops[1].index
            def h_cvtsd2n(idx, cyc=cyc, cost=cost, xl=xl, d=d, s=s, enc=enc):
                xl[d] = (xl[d] & _HI32) | enc(bits_to_double(xl[s]))
                cyc[0] += cost
                return idx + 1
            return h_cvtsd2n

        if op is Op.CVTBF2SD or op is Op.CVTHF2SD:
            dec = _FPN_CODEC["bf" if op is Op.CVTBF2SD else "hf"][0]
            d = ops[0].index
            s = ops[1].index
            def h_cvtn2sd(idx, cyc=cyc, cost=cost, xl=xl, d=d, s=s, dec=dec):
                xl[d] = double_to_bits(dec(xl[s] & 0xFFFF))
                cyc[0] += cost
                return idx + 1
            return h_cvtn2sd

        # ---- packed single -----------------------------------------------------
        if op in _PS_BIN:
            fn = _PS_BIN[op]
            d = ops[0].index
            read2 = self._xsrc128(ops[1], iaddr)
            def h_ps(idx, cyc=cyc, cost=cost, xl=xl, xh=xh, d=d, read2=read2, fn=fn):
                lo, hi = read2()
                a = xl[d]
                xl[d] = (fn((a >> 32) & _M32, (lo >> 32) & _M32) << 32) | fn(a & _M32, lo & _M32)
                b = xh[d]
                xh[d] = (fn((b >> 32) & _M32, (hi >> 32) & _M32) << 32) | fn(b & _M32, hi & _M32)
                cyc[0] += cost
                return idx + 1
            return h_ps

        if op is Op.SQRTPS:
            d = ops[0].index
            read2 = self._xsrc128(ops[1], iaddr)
            sqrt = ieee.single_sqrt
            def h_sqrtps(idx, cyc=cyc, cost=cost, xl=xl, xh=xh, d=d, read2=read2, sqrt=sqrt):
                lo, hi = read2()
                xl[d] = (sqrt((lo >> 32) & _M32) << 32) | sqrt(lo & _M32)
                xh[d] = (sqrt((hi >> 32) & _M32) << 32) | sqrt(hi & _M32)
                cyc[0] += cost
                return idx + 1
            return h_sqrtps

        # ---- lane access ---------------------------------------------------------
        if op is Op.PEXTR:
            d = ops[0].index
            x = ops[1].index
            lane = ops[2].value
            if lane not in (0, 1):
                raise VmTrap(f"pextr lane must be 0 or 1, got {lane}", iaddr)
            src = xl if lane == 0 else xh
            def h_pextr(idx, cyc=cyc, cost=cost, gpr=gpr, src=src, d=d, x=x):
                gpr[d] = src[x]
                cyc[0] += cost
                return idx + 1
            return h_pextr

        if op is Op.PINSR:
            x = ops[0].index
            s = ops[1].index
            lane = ops[2].value
            if lane not in (0, 1):
                raise VmTrap(f"pinsr lane must be 0 or 1, got {lane}", iaddr)
            dst = xl if lane == 0 else xh
            def h_pinsr(idx, cyc=cyc, cost=cost, gpr=gpr, dst=dst, x=x, s=s):
                dst[x] = gpr[s]
                cyc[0] += cost
                return idx + 1
            return h_pinsr

        # ---- MPI -----------------------------------------------------------------
        if op is Op.MPIRANK:
            d = ops[0].index
            rank = self.rank
            def h_rank(idx, cyc=cyc, cost=cost, gpr=gpr, d=d, rank=rank):
                gpr[d] = rank
                cyc[0] += cost
                return idx + 1
            return h_rank

        if op is Op.MPISIZE:
            d = ops[0].index
            size = self.size
            def h_size(idx, cyc=cyc, cost=cost, gpr=gpr, d=d, size=size):
                gpr[d] = size
                cyc[0] += cost
                return idx + 1
            return h_size

        if op in (Op.ALLRED, Op.ALLREDSS, Op.BCASTSD):
            x = ops[0].index
            arg = ops[1].value
            kind = {"allred": "allred", "allredss": "allredss", "bcastsd": "bcastsd"}[
                info.mnemonic
            ]
            if arg not in (RED_SUM, RED_MIN, RED_MAX) and op is not Op.BCASTSD:
                raise VmTrap(f"bad reduction selector {arg}", iaddr)
            if self.size == 1:
                def h_mpi1(idx, cyc=cyc, cost=cost):
                    cyc[0] += cost
                    return idx + 1
                return h_mpi1
            def h_mpi(idx, cyc=cyc, cost=cost, kind=kind, x=x, arg=arg):
                cyc[0] += cost
                raise CollectiveYield(kind, idx + 1, xmm=x, arg=arg)
            return h_mpi

        if op in (Op.ALLREDV, Op.ALLREDVSS):
            addrf = self._addr_fn(ops[0])
            arg = ops[1].value
            cnt_reg = ops[2].index
            kind = "allredv" if op is Op.ALLREDV else "allredvss"
            if arg not in (RED_SUM, RED_MIN, RED_MAX):
                raise VmTrap(f"bad reduction selector {arg}", iaddr)
            top = len(mem)
            if self.size == 1:
                def h_mpiv1(idx, cyc=cyc, cost=cost, gpr=gpr, addrf=addrf,
                            cnt_reg=cnt_reg, top=top):
                    a = addrf()
                    n = gpr[cnt_reg]
                    if not (0 <= a and a + n <= top):
                        raise _PendingTrap(f"vector collective out of bounds: {a}+{n}")
                    cyc[0] += cost
                    return idx + 1
                return h_mpiv1
            def h_mpiv(idx, cyc=cyc, cost=cost, gpr=gpr, addrf=addrf,
                       cnt_reg=cnt_reg, kind=kind, arg=arg, top=top):
                a = addrf()
                n = gpr[cnt_reg]
                if not (0 <= a and a + n <= top):
                    raise _PendingTrap(f"vector collective out of bounds: {a}+{n}")
                cyc[0] += cost
                raise CollectiveYield(kind, idx + 1, arg=arg, addr=a, count=n)
            return h_mpiv

        if op is Op.BARRIER:
            if self.size == 1:
                def h_bar1(idx, cyc=cyc, cost=cost):
                    cyc[0] += cost
                    return idx + 1
                return h_bar1
            def h_bar(idx, cyc=cyc, cost=cost):
                cyc[0] += cost
                raise CollectiveYield("barrier", idx + 1)
            return h_bar

        raise VmTrap(f"no handler for opcode {info.mnemonic}", iaddr)

    def _branch_index(self, operand, iaddr: int) -> int:
        if not isinstance(operand, Imm):
            raise VmTrap("branch target must be immediate", iaddr)
        target = self._addr2idx.get(operand.value)
        if target is None:
            raise VmTrap(
                f"branch to non-instruction address {operand.value:#x}", iaddr
            )
        return target


_COND_TABLE = {
    Op.JE: lambda f: f[0],
    Op.JNE: lambda f: not f[0],
    Op.JL: lambda f: f[1],
    Op.JLE: lambda f: f[1] or f[0],
    Op.JG: lambda f: not (f[1] or f[0] or f[2]),
    Op.JGE: lambda f: not f[1] and not f[2],
    Op.JP: lambda f: f[2],
    Op.JNP: lambda f: not f[2],
}


class Machine:
    """Persistent single-rank executor amortizing closure compilation.

    A Machine owns at most one live :class:`VM` plus the
    :class:`CompiledSegmentCache` bound to it.  :meth:`run` reuses the
    VM's state arrays and cached closures whenever the next program has
    the same data image as the current one — always true across the
    instrumented variants of a single workload, which is the search's hot
    path — and otherwise starts a fresh VM and cache.  State is fully
    reset between runs, so results (outputs, cycles, steps) are identical
    to a fresh :func:`run_program` call; the differential tests assert
    this bit-for-bit.

    The optional *telemetry* only feeds the ``vm.compile_cache_*``
    metric counters.  It is deliberately not passed into the VM: the
    evaluation path runs the VM silent (exactly like the seed's
    ``run_program(..., telemetry=None)``), keeping traces byte-compatible.
    """

    def __init__(
        self,
        stack_words: int = 8192,
        seed: int = 0x9E3779B97F4A7C15,
        max_steps: int = 200_000_000,
        cost_model: CostModel | None = None,
        telemetry=None,
    ) -> None:
        self.stack_words = stack_words
        self.seed = seed
        self.max_steps = max_steps
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.runs = 0
        self._vm: VM | None = None
        self._cache: CompiledSegmentCache | None = None

    @property
    def compile_cache_hits(self) -> int:
        return self._cache.hits if self._cache is not None else 0

    @property
    def compile_cache_misses(self) -> int:
        return self._cache.misses if self._cache is not None else 0

    @property
    def fuse_cache_hits(self) -> int:
        return self._vm.fuse_hits if self._vm is not None else 0

    @property
    def fuse_cache_misses(self) -> int:
        return self._vm.fuse_misses if self._vm is not None else 0

    def run(self, program: Program, segments=None) -> ExecResult:
        """Execute *program* to HALT, like :func:`run_program`.

        *segments* is the template tiling from the instrumentation cache
        (``InstrumentedProgram.segments``); pass ``None`` to load without
        closure reuse (the VM and its state arrays are still recycled).
        """
        cache = self._cache
        h0 = cache.hits if cache is not None else 0
        m0 = cache.misses if cache is not None else 0
        vm = self._vm
        if vm is not None and program.data_image == vm._data_image0:
            vm.rebind(program, segments)
        else:
            cache = self._cache = CompiledSegmentCache(self.cost_model)
            h0 = m0 = 0
            vm = self._vm = VM(
                program,
                stack_words=self.stack_words,
                seed=self.seed,
                max_steps=self.max_steps,
                cost_model=self.cost_model,
                segment_cache=cache,
                segments=segments,
            )
        self.runs += 1
        try:
            return vm.run()
        finally:
            t = self.telemetry
            t.count("vm.compile_cache_hits", cache.hits - h0)
            t.count("vm.compile_cache_misses", cache.misses - m0)


def run_program(
    program: Program,
    stack_words: int = 8192,
    seed: int = 0x9E3779B97F4A7C15,
    max_steps: int = 200_000_000,
    profile: bool = False,
    cost_model: CostModel | None = None,
    telemetry=None,
    observer=None,
    fused: bool = True,
) -> ExecResult:
    """Load and run *program* single-rank; returns its :class:`ExecResult`.

    With *telemetry* enabled, a ``vm.opcodes`` census event is emitted
    after the run (trap events are emitted from inside the VM).  An
    *observer* (see :mod:`repro.analysis`) watches execution without
    changing outputs, cycles, or trap behaviour.
    """
    vm = VM(
        program,
        stack_words=stack_words,
        seed=seed,
        max_steps=max_steps,
        profile=profile,
        cost_model=cost_model,
        telemetry=telemetry,
        observer=observer,
        fused=fused,
    )
    result = vm.run()
    vm.publish()
    return result
