"""The machine (cycle) model.

This is the deterministic stand-in for the paper's Xeon wall-clock
measurements.  The calibration principles:

* **Integer/branch work is cheap** (1 cycle): real superscalar hardware
  overlaps address arithmetic and loop control with FP and memory work,
  and an interpreter that charged them at par would drown the effects the
  paper measures.
* **Double costs twice single**, for both arithmetic and memory traffic —
  the 2-2.5x advantage the paper cites for single-precision streaming.
* **Memory traffic is the dominant charge** (12 cycles per 8-byte access,
  6 per 4-byte), reflecting bandwidth-bound scientific kernels.
* **Stack traffic is memory traffic**: the push/pop save/restore in every
  instrumentation snippet is what makes the base-case overhead land in
  the paper's "under 20X, mostly under 10X" band.

All experiment ratios (Figures 8, 9, 11; the AMG speedup) are ratios of
these cycle counts.  ``CostModel`` is a parameter of the VM, so ablation
benchmarks can vary it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Op, OPCODE_INFO


@dataclass(frozen=True)
class CostModel:
    """Per-category cycle charges (see module docstring)."""

    int_alu: int = 1
    branch: int = 1
    branch_taken_extra: int = 1
    movq: int = 2
    push_pop: int = 16       # one stack cell moved
    pushx_popx: int = 32     # two stack cells moved
    call_ret: int = 14
    fp64: int = 16
    fp32: int = 8
    fp64_div: int = 60
    fp32_div: int = 30
    fp64_transc: int = 140
    fp32_transc: int = 70
    packed64: int = 24
    packed32: int = 12
    packed64_div: int = 90
    packed32_div: int = 45
    cvt64: int = 8
    cvt32: int = 4
    lane: int = 2            # pextr / pinsr
    out_rand: int = 4
    mpi_local: int = 20      # local cost of reaching a collective
    mem8: int = 12
    mem4: int = 6
    mem16: int = 24
    #: frame (stack-local) accesses stay L1-resident on real hardware;
    #: array/global traffic is what streams through the memory system.
    mem_frame: int = 1

    def mem_cost(self, width: int, is_frame: bool = False) -> int:
        if is_frame:
            return self.mem_frame
        if width == 4:
            return self.mem4
        if width == 16:
            return self.mem16
        return self.mem8

    def op_cost(self, op: Op) -> int:
        return _build_table(self)[op]


_TABLE_CACHE: dict = {}


def _build_table(model: CostModel) -> dict:
    cached = _TABLE_CACHE.get(model)
    if cached is not None:
        return cached

    m = model
    table: dict[Op, int] = {}
    fp64_bin = {Op.ADDSD, Op.SUBSD, Op.MULSD, Op.MINSD, Op.MAXSD, Op.UCOMISD}
    fp32_bin = {Op.ADDSS, Op.SUBSS, Op.MULSS, Op.MINSS, Op.MAXSS, Op.UCOMISS}
    fp64_cheap = {Op.ABSSD, Op.NEGSD}
    fp32_cheap = {Op.ABSSS, Op.NEGSS}
    transc64 = {Op.SINSD, Op.COSSD, Op.EXPSD, Op.LOGSD}
    transc32 = {Op.SINSS, Op.COSSS, Op.EXPSS, Op.LOGSS}
    pd = {Op.ADDPD, Op.SUBPD, Op.MULPD}
    ps = {Op.ADDPS, Op.SUBPS, Op.MULPS}

    for op, info in OPCODE_INFO.items():
        if op in fp64_bin:
            cost = m.fp64
        elif op in fp32_bin:
            cost = m.fp32
        elif op in fp64_cheap:
            cost = m.int_alu
        elif op in fp32_cheap:
            cost = m.int_alu
        elif op in (Op.DIVSD, Op.SQRTSD):
            cost = m.fp64_div
        elif op in (Op.DIVSS, Op.SQRTSS):
            cost = m.fp32_div
        elif op in transc64:
            cost = m.fp64_transc
        elif op in transc32:
            cost = m.fp32_transc
        elif op in pd:
            cost = m.packed64
        elif op in ps:
            cost = m.packed32
        elif op in (Op.DIVPD, Op.SQRTPD):
            cost = m.packed64_div
        elif op in (Op.DIVPS, Op.SQRTPS):
            cost = m.packed32_div
        elif op in (Op.CVTSI2SD, Op.CVTTSD2SI, Op.CVTSD2SS, Op.CVTSS2SD):
            cost = m.cvt64
        elif op in (Op.CVTSI2SS, Op.CVTTSS2SI):
            cost = m.cvt32
        elif op in (Op.MOVQXR, Op.MOVQRX):
            cost = m.movq
        elif op in (Op.PEXTR, Op.PINSR):
            cost = m.lane
        elif op in (Op.PUSH, Op.POP):
            cost = m.push_pop
        elif op in (Op.PUSHX, Op.POPX):
            cost = m.pushx_popx
        elif op in (Op.CALL, Op.RET):
            cost = m.call_ret
        elif info.is_branch:
            cost = m.branch
        elif op in (Op.OUTI, Op.OUTSD, Op.OUTSS, Op.RAND):
            cost = m.out_rand
        elif info.comm:
            cost = m.mpi_local
        elif op in (Op.MOVSD, Op.MOVSS, Op.MOVAPD):
            cost = m.int_alu  # register form; memory forms add mem_cost
        else:
            cost = m.int_alu
        table[op] = cost

    _TABLE_CACHE[model] = table
    return table


#: The calibrated default used by all experiments.
DEFAULT_COST_MODEL = CostModel()
