"""VM exception types."""

from __future__ import annotations


class VmTrap(Exception):
    """A hard runtime fault: bad memory access, stack overflow, division by
    zero, return to a non-instruction address, or step-budget exhaustion.

    The search evaluator treats a trap as a failed verification — this is
    the paper's "anything that our analysis misses causes a crash, which is
    much easier to debug than mis-rounded operations".
    """

    def __init__(self, message: str, addr: int = -1) -> None:
        self.addr = addr
        if addr >= 0:
            message = f"{message} (at text address {addr:#x})"
        super().__init__(message)


class VmTimeout(VmTrap):
    """Step-budget exhaustion, distinguished from hard faults so the
    search can report *why* an evaluation failed (a wrecked loop bound
    that spins forever is a different diagnosis than an out-of-bounds
    access)."""


class CollectiveYield(Exception):
    """Raised by MPI opcodes in multi-rank mode to hand control back to the
    rank scheduler.  Carries everything needed to resume the rank.
    """

    def __init__(
        self,
        kind: str,
        resume_index: int,
        xmm: int = -1,
        arg: int = 0,
        addr: int = -1,
        count: int = 0,
    ) -> None:
        super().__init__(kind)
        self.kind = kind          # allred|allredss|allredv|allredvss|barrier|bcastsd
        self.resume_index = resume_index
        self.xmm = xmm            # register involved, -1 for memory/barrier forms
        self.arg = arg            # reduction selector or broadcast root
        self.addr = addr          # memory base for vector collectives
        self.count = count        # element count for vector collectives
