"""The virtual machine: executes Programs at the bit level.

Registers and memory cells hold raw 64-bit patterns; floating-point
semantics are applied only inside opcode handlers via :mod:`repro.fpbits`.
This is what makes the paper's in-place replacement scheme work unchanged:
a "replaced" value is just a pattern with ``0x7FF4DEAD`` in its high word,
and it flows through moves, pushes, memory and MPI buffers exactly as it
would through x86 registers and RAM.

The VM also implements the machine model that stands in for the paper's
Xeon timings: every instruction has a cycle cost (double FLOPs cost more
than single FLOPs, memory accesses are priced by bytes moved), so
"overhead" and "speedup" are deterministic, reproducible ratios.
"""

from repro.vm.errors import VmTrap, VmTimeout, CollectiveYield
from repro.vm.machine import (
    VM,
    CompiledSegmentCache,
    ExecResult,
    Machine,
    run_program,
)
from repro.vm.outputs import decode_outputs, outputs_close

__all__ = [
    "VM",
    "CompiledSegmentCache",
    "ExecResult",
    "Machine",
    "run_program",
    "VmTrap",
    "VmTimeout",
    "CollectiveYield",
    "decode_outputs",
    "outputs_close",
]
