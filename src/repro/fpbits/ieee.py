"""IEEE-754 encode/decode and correctly-rounded scalar arithmetic on bit patterns.

The virtual machine stores every value as a 64-bit integer pattern; these
helpers are the single point where patterns are interpreted as IEEE-754
numbers.  Double-precision arithmetic uses the host's native binary64
(CPython floats), with explicit handling for the cases where Python raises
instead of producing IEEE special values (division by zero, ``sqrt`` of a
negative number, ``log`` of a non-positive number).

Single-precision arithmetic is computed in binary64 and then rounded to
binary32.  For ``+ - * / sqrt`` this is *exactly* equivalent to native
binary32 arithmetic: rounding to precision ``2p + 2`` (53 >= 2*24 + 2)
followed by rounding to ``p`` is innocuous (Figueroa, "When is double
rounding innocuous?").  Transcendentals are not correctly rounded on any
real hardware either; we document them as "double evaluation rounded to
single", the same contract as calling ``sinf`` via ``(float)sin(x)``.
"""

from __future__ import annotations

import math
import struct

BITS64_MASK = 0xFFFFFFFFFFFFFFFF
BITS32_MASK = 0xFFFFFFFF

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")
_PACK_F = struct.Struct("<f")
_PACK_I = struct.Struct("<I")

_POS_INF32 = 0x7F800000
_NEG_INF32 = 0xFF800000
_NAN32 = 0x7FC00000
_NAN64 = 0x7FF8000000000000


def double_to_bits(value: float) -> int:
    """Return the 64-bit IEEE binary64 pattern of *value*."""
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def bits_to_double(bits: int) -> float:
    """Interpret a 64-bit pattern as an IEEE binary64 value."""
    return _PACK_D.unpack(_PACK_Q.pack(bits & BITS64_MASK))[0]


def single_to_bits(value: float) -> int:
    """Round *value* (a binary64) to binary32 and return its 32-bit pattern.

    Overflow produces a signed infinity, matching ``cvtsd2ss`` semantics
    (``struct.pack`` would raise ``OverflowError`` instead).
    """
    try:
        return _PACK_I.unpack(_PACK_F.pack(value))[0]
    except OverflowError:
        return _NEG_INF32 if value < 0.0 else _POS_INF32


def bits_to_single(bits: int) -> float:
    """Interpret a 32-bit pattern as binary32, widened exactly to a float."""
    return _PACK_F.unpack(_PACK_I.pack(bits & BITS32_MASK))[0]


def is_nan_bits64(bits: int) -> bool:
    """True if the 64-bit pattern encodes a NaN (any payload)."""
    return (bits & 0x7FF0000000000000) == 0x7FF0000000000000 and (
        bits & 0x000FFFFFFFFFFFFF
    ) != 0


def is_nan_bits32(bits: int) -> bool:
    """True if the 32-bit pattern encodes a NaN (any payload)."""
    return (bits & 0x7F800000) == 0x7F800000 and (bits & 0x007FFFFF) != 0


# ---------------------------------------------------------------------------
# Double-precision arithmetic on 64-bit patterns.
# ---------------------------------------------------------------------------


def double_add(a: int, b: int) -> int:
    return double_to_bits(bits_to_double(a) + bits_to_double(b))


def double_sub(a: int, b: int) -> int:
    return double_to_bits(bits_to_double(a) - bits_to_double(b))


def double_mul(a: int, b: int) -> int:
    return double_to_bits(bits_to_double(a) * bits_to_double(b))


def double_div(a: int, b: int) -> int:
    x = bits_to_double(a)
    y = bits_to_double(b)
    try:
        return double_to_bits(x / y)
    except ZeroDivisionError:
        return double_to_bits(_ieee_div_by_zero(x, y))


def _ieee_div_by_zero(x: float, y: float) -> float:
    # y is +/-0.0 here.  0/0 and nan/0 are NaN; otherwise signed infinity.
    if x != x or x == 0.0:
        return math.nan
    sign = math.copysign(1.0, x) * math.copysign(1.0, y)
    return math.inf if sign > 0 else -math.inf


def double_sqrt(a: int) -> int:
    x = bits_to_double(a)
    if x != x:
        return _NAN64
    if x < 0.0:
        return _NAN64
    return double_to_bits(math.sqrt(x))


def double_neg(a: int) -> int:
    # Pure sign-bit flip, like xorpd with a sign mask: works for NaN/inf too.
    return (a ^ 0x8000000000000000) & BITS64_MASK


def double_abs(a: int) -> int:
    return a & 0x7FFFFFFFFFFFFFFF


def double_min(a: int, b: int) -> int:
    # SSE minsd semantics: returns the second operand if either is NaN,
    # and min(a, b) computed as (a < b) ? a : b.
    x = bits_to_double(a)
    y = bits_to_double(b)
    if x != x or y != y:
        return b
    return a if x < y else b


def double_max(a: int, b: int) -> int:
    x = bits_to_double(a)
    y = bits_to_double(b)
    if x != x or y != y:
        return b
    return a if x > y else b


# ---------------------------------------------------------------------------
# Single-precision arithmetic on 32-bit patterns.
# ---------------------------------------------------------------------------


def single_add(a: int, b: int) -> int:
    return single_to_bits(bits_to_single(a) + bits_to_single(b))


def single_sub(a: int, b: int) -> int:
    return single_to_bits(bits_to_single(a) - bits_to_single(b))


def single_mul(a: int, b: int) -> int:
    return single_to_bits(bits_to_single(a) * bits_to_single(b))


def single_div(a: int, b: int) -> int:
    x = bits_to_single(a)
    y = bits_to_single(b)
    try:
        return single_to_bits(x / y)
    except ZeroDivisionError:
        r = _ieee_div_by_zero(x, y)
        return _NAN32 if r != r else single_to_bits(r)


def single_sqrt(a: int) -> int:
    x = bits_to_single(a)
    if x != x or x < 0.0:
        return _NAN32
    return single_to_bits(math.sqrt(x))


def single_neg(a: int) -> int:
    return (a ^ 0x80000000) & BITS32_MASK


def single_abs(a: int) -> int:
    return a & 0x7FFFFFFF


def single_min(a: int, b: int) -> int:
    x = bits_to_single(a)
    y = bits_to_single(b)
    if x != x or y != y:
        return b
    return a if x < y else b


def single_max(a: int, b: int) -> int:
    x = bits_to_single(a)
    y = bits_to_single(b)
    if x != x or y != y:
        return b
    return a if x > y else b


# ---------------------------------------------------------------------------
# Transcendentals (documented as double evaluation rounded to target width).
# ---------------------------------------------------------------------------


def _safe_unary(fn, x: float) -> float:
    try:
        r = fn(x)
    except (ValueError, OverflowError):
        return math.nan if (x != x or x < 0.0 or fn in (math.log,)) else math.inf
    return r


def double_sin(a: int) -> int:
    x = bits_to_double(a)
    if x != x or math.isinf(x):
        return _NAN64
    return double_to_bits(math.sin(x))


def double_cos(a: int) -> int:
    x = bits_to_double(a)
    if x != x or math.isinf(x):
        return _NAN64
    return double_to_bits(math.cos(x))


def double_exp(a: int) -> int:
    x = bits_to_double(a)
    if x != x:
        return _NAN64
    try:
        return double_to_bits(math.exp(x))
    except OverflowError:
        return double_to_bits(math.inf)


def double_log(a: int) -> int:
    x = bits_to_double(a)
    if x != x or x < 0.0:
        return _NAN64
    if x == 0.0:
        return double_to_bits(-math.inf)
    return double_to_bits(math.log(x))


def single_sin(a: int) -> int:
    x = bits_to_single(a)
    if x != x or math.isinf(x):
        return _NAN32
    return single_to_bits(math.sin(x))


def single_cos(a: int) -> int:
    x = bits_to_single(a)
    if x != x or math.isinf(x):
        return _NAN32
    return single_to_bits(math.cos(x))


def single_exp(a: int) -> int:
    x = bits_to_single(a)
    if x != x:
        return _NAN32
    try:
        return single_to_bits(math.exp(x))
    except OverflowError:
        return single_to_bits(math.inf)


def single_log(a: int) -> int:
    x = bits_to_single(a)
    if x != x or x < 0.0:
        return _NAN32
    if x == 0.0:
        return single_to_bits(-math.inf)
    return single_to_bits(math.log(x))
