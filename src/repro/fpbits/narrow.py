"""bfloat16 / binary16 encode/decode and arithmetic on 16-bit patterns.

These are the two extra rungs of the precision lattice below binary32
(see :mod:`repro.lattice`).  Both widths follow the same contract as the
binary32 helpers in :mod:`repro.fpbits.ieee`: values are computed in the
host's binary64 and then rounded to the target width, which is *exactly*
equivalent to native narrow arithmetic for ``+ - * / sqrt`` because the
intermediate precision exceeds ``2p + 2`` (53 >= 2*11 + 2 for binary16,
53 >= 2*8 + 2 for bfloat16 — Figueroa, "When is double rounding
innocuous?").  Transcendentals are documented as "double evaluation
rounded to the target width", the same contract the binary32 family
already carries.

* **bfloat16** (1 sign, 8 exponent, 7 mantissa) shares binary32's
  exponent field, so encode is a round-to-nearest-even truncation of the
  binary32 pattern and decode is an exact left shift.
* **binary16** (1 sign, 5 exponent, 10 mantissa) is IEEE half precision;
  CPython's ``struct`` ``<e`` format packs and unpacks it with
  round-to-nearest-even, including subnormals.  Overflow maps to a
  signed infinity, matching the ``cvtsd2ss`` convention of
  :func:`repro.fpbits.ieee.single_to_bits`.
"""

from __future__ import annotations

import math
import struct

from repro.fpbits.ieee import (
    _ieee_div_by_zero,
    bits_to_single,
    single_to_bits,
)

BITS16_MASK = 0xFFFF

_PACK_E = struct.Struct("<e")
_PACK_H = struct.Struct("<H")

_POS_INF_BF = 0x7F80
_NEG_INF_BF = 0xFF80
_NAN_BF = 0x7FC0

_POS_INF_HF = 0x7C00
_NEG_INF_HF = 0xFC00
_NAN_HF = 0x7E00


# ---------------------------------------------------------------------------
# bfloat16 encode/decode.
# ---------------------------------------------------------------------------


def bf16_to_bits(value: float) -> int:
    """Round *value* (a binary64) to bfloat16; return its 16-bit pattern.

    Round-to-nearest-even via the carry trick on the binary32 pattern;
    the intermediate binary32 rounding is innocuous (see module
    docstring).  NaN inputs are forced quiet (mantissa MSB set) so a
    payload that truncates to zero cannot turn into an infinity.
    """
    bits = single_to_bits(value)
    if (bits & 0x7F800000) == 0x7F800000 and (bits & 0x007FFFFF) != 0:
        return ((bits >> 16) | 0x0040) & BITS16_MASK
    return ((bits + 0x7FFF + ((bits >> 16) & 1)) >> 16) & BITS16_MASK


def bits_to_bf16(bits: int) -> float:
    """Interpret a 16-bit bfloat16 pattern, widened exactly to a float."""
    return bits_to_single((bits & BITS16_MASK) << 16)


# ---------------------------------------------------------------------------
# binary16 (IEEE half) encode/decode.
# ---------------------------------------------------------------------------


def f16_to_bits(value: float) -> int:
    """Round *value* (a binary64) to binary16; return its 16-bit pattern.

    Overflow produces a signed infinity (``struct.pack`` raises
    ``OverflowError`` instead); NaNs pack to the canonical quiet NaN
    ``0x7E00``.
    """
    try:
        return _PACK_H.unpack(_PACK_E.pack(value))[0]
    except OverflowError:
        return _NEG_INF_HF if value < 0.0 else _POS_INF_HF


def bits_to_f16(bits: int) -> float:
    """Interpret a 16-bit binary16 pattern, widened exactly to a float."""
    return _PACK_E.unpack(_PACK_H.pack(bits & BITS16_MASK))[0]


def is_nan_bits_bf16(bits: int) -> bool:
    """True if the 16-bit bfloat16 pattern encodes a NaN (any payload)."""
    return (bits & 0x7F80) == 0x7F80 and (bits & 0x007F) != 0


def is_nan_bits_f16(bits: int) -> bool:
    """True if the 16-bit binary16 pattern encodes a NaN (any payload)."""
    return (bits & 0x7C00) == 0x7C00 and (bits & 0x03FF) != 0


# ---------------------------------------------------------------------------
# bfloat16 arithmetic on 16-bit patterns.
# ---------------------------------------------------------------------------


def bf16_add(a: int, b: int) -> int:
    return bf16_to_bits(bits_to_bf16(a) + bits_to_bf16(b))


def bf16_sub(a: int, b: int) -> int:
    return bf16_to_bits(bits_to_bf16(a) - bits_to_bf16(b))


def bf16_mul(a: int, b: int) -> int:
    return bf16_to_bits(bits_to_bf16(a) * bits_to_bf16(b))


def bf16_div(a: int, b: int) -> int:
    x = bits_to_bf16(a)
    y = bits_to_bf16(b)
    try:
        return bf16_to_bits(x / y)
    except ZeroDivisionError:
        r = _ieee_div_by_zero(x, y)
        return _NAN_BF if r != r else bf16_to_bits(r)


def bf16_sqrt(a: int) -> int:
    x = bits_to_bf16(a)
    if x != x or x < 0.0:
        return _NAN_BF
    return bf16_to_bits(math.sqrt(x))


def bf16_neg(a: int) -> int:
    return (a ^ 0x8000) & BITS16_MASK


def bf16_abs(a: int) -> int:
    return a & 0x7FFF


def bf16_min(a: int, b: int) -> int:
    # SSE min semantics: second operand if either is NaN, (a < b) ? a : b.
    x = bits_to_bf16(a)
    y = bits_to_bf16(b)
    if x != x or y != y:
        return b
    return a if x < y else b


def bf16_max(a: int, b: int) -> int:
    x = bits_to_bf16(a)
    y = bits_to_bf16(b)
    if x != x or y != y:
        return b
    return a if x > y else b


def bf16_sin(a: int) -> int:
    x = bits_to_bf16(a)
    if x != x or math.isinf(x):
        return _NAN_BF
    return bf16_to_bits(math.sin(x))


def bf16_cos(a: int) -> int:
    x = bits_to_bf16(a)
    if x != x or math.isinf(x):
        return _NAN_BF
    return bf16_to_bits(math.cos(x))


def bf16_exp(a: int) -> int:
    x = bits_to_bf16(a)
    if x != x:
        return _NAN_BF
    try:
        return bf16_to_bits(math.exp(x))
    except OverflowError:
        return bf16_to_bits(math.inf)


def bf16_log(a: int) -> int:
    x = bits_to_bf16(a)
    if x != x or x < 0.0:
        return _NAN_BF
    if x == 0.0:
        return bf16_to_bits(-math.inf)
    return bf16_to_bits(math.log(x))


# ---------------------------------------------------------------------------
# binary16 arithmetic on 16-bit patterns.
# ---------------------------------------------------------------------------


def f16_add(a: int, b: int) -> int:
    return f16_to_bits(bits_to_f16(a) + bits_to_f16(b))


def f16_sub(a: int, b: int) -> int:
    return f16_to_bits(bits_to_f16(a) - bits_to_f16(b))


def f16_mul(a: int, b: int) -> int:
    return f16_to_bits(bits_to_f16(a) * bits_to_f16(b))


def f16_div(a: int, b: int) -> int:
    x = bits_to_f16(a)
    y = bits_to_f16(b)
    try:
        return f16_to_bits(x / y)
    except ZeroDivisionError:
        r = _ieee_div_by_zero(x, y)
        return _NAN_HF if r != r else f16_to_bits(r)


def f16_sqrt(a: int) -> int:
    x = bits_to_f16(a)
    if x != x or x < 0.0:
        return _NAN_HF
    return f16_to_bits(math.sqrt(x))


def f16_neg(a: int) -> int:
    return (a ^ 0x8000) & BITS16_MASK


def f16_abs(a: int) -> int:
    return a & 0x7FFF


def f16_min(a: int, b: int) -> int:
    x = bits_to_f16(a)
    y = bits_to_f16(b)
    if x != x or y != y:
        return b
    return a if x < y else b


def f16_max(a: int, b: int) -> int:
    x = bits_to_f16(a)
    y = bits_to_f16(b)
    if x != x or y != y:
        return b
    return a if x > y else b


def f16_sin(a: int) -> int:
    x = bits_to_f16(a)
    if x != x or math.isinf(x):
        return _NAN_HF
    return f16_to_bits(math.sin(x))


def f16_cos(a: int) -> int:
    x = bits_to_f16(a)
    if x != x or math.isinf(x):
        return _NAN_HF
    return f16_to_bits(math.cos(x))


def f16_exp(a: int) -> int:
    x = bits_to_f16(a)
    if x != x:
        return _NAN_HF
    try:
        return f16_to_bits(math.exp(x))
    except OverflowError:
        return f16_to_bits(math.inf)


def f16_log(a: int) -> int:
    x = bits_to_f16(a)
    if x != x or x < 0.0:
        return _NAN_HF
    if x == 0.0:
        return f16_to_bits(-math.inf)
    return f16_to_bits(math.log(x))
