"""The in-place replacement scheme (paper Section 2.3, Figure 5).

A *replaced* double is a 64-bit slot whose high word is the sentinel
``0x7FF4DEAD`` and whose low word holds the binary32 pattern of the value.
The sentinel was chosen by the authors so that

* ``0x7FF4...`` encodes a NaN — un-instrumented code that consumes a
  replaced slot computes NaNs instead of silently propagating a wrong
  value, and
* ``...DEAD`` is easy to spot in a hex dump.

Note the sentinel sits in the *signalling* NaN range of binary64 (quiet
bit 51 clear, payload non-zero); the paper calls it non-signalling in the
practical sense that x86 SSE does not trap on it by default.

The precision lattice (:mod:`repro.lattice`) extends the scheme below
binary32 with one **distinct sentinel per width** — ``0x7FF4BEEF`` for
bfloat16 and ``0x7FF4FEED`` for binary16, both sharing the ``0x7FF4``
NaN prefix — so a slot always records *which* width it was narrowed to
and un-instrumented consumers of any narrowed slot still fail loudly as
NaNs.  16-bit patterns occupy the low 16 bits of the slot, zero-extended
through the low word.
"""

from __future__ import annotations

from repro.fpbits.ieee import (
    BITS64_MASK,
    bits_to_double,
    bits_to_single,
    double_to_bits,
    single_to_bits,
)
from repro.fpbits.narrow import (
    bf16_to_bits,
    bits_to_bf16,
    bits_to_f16,
    f16_to_bits,
)

#: High-word sentinel marking a replaced (single-in-double-slot) value.
REPLACED_FLAG = 0x7FF4DEAD

#: High-word sentinel marking a bfloat16-narrowed slot.
REPLACED_FLAG_BF16 = 0x7FF4BEEF

#: High-word sentinel marking a binary16-narrowed slot.
REPLACED_FLAG_F16 = 0x7FF4FEED

#: The sentinel positioned in the high word of a 64-bit slot.
REPLACED_FLAG_SHIFTED = REPLACED_FLAG << 32

HIGH_WORD_MASK = 0xFFFFFFFF00000000
LOW_WORD_MASK = 0x00000000FFFFFFFF

#: Narrow width name -> (high-word sentinel, encode from float, decode to
#: float).  The keys are the :mod:`repro.lattice` width names below f64.
WIDTH_CODECS = {
    "f32": (REPLACED_FLAG, single_to_bits, bits_to_single),
    "bf16": (REPLACED_FLAG_BF16, bf16_to_bits, bits_to_bf16),
    "f16": (REPLACED_FLAG_F16, f16_to_bits, bits_to_f16),
}

_SENTINEL_TO_WIDTH = {codec[0]: name for name, codec in WIDTH_CODECS.items()}


def is_replaced(bits: int) -> bool:
    """True if the 64-bit slot carries the replacement sentinel."""
    return (bits & HIGH_WORD_MASK) == REPLACED_FLAG_SHIFTED


def make_replaced(single_bits: int) -> int:
    """Build a replaced slot from a 32-bit binary32 pattern."""
    return REPLACED_FLAG_SHIFTED | (single_bits & LOW_WORD_MASK)


def replaced_single_bits(bits: int) -> int:
    """Extract the binary32 pattern from a replaced slot."""
    return bits & LOW_WORD_MASK


def downcast_in_place(bits: int) -> int:
    """Narrow an (unreplaced) binary64 slot to a flagged binary32 slot.

    This is the "downcast conversion" of the paper's Figure 5: the value is
    rounded to single precision, stored in the low word, and the high word
    is set to the sentinel.  Idempotent on already-replaced slots.
    """
    if is_replaced(bits):
        return bits
    return make_replaced(single_to_bits(bits_to_double(bits)))


def upcast_in_place(bits: int) -> int:
    """Widen a replaced slot back to a plain binary64 slot.

    Identity on slots that do not carry the sentinel.
    """
    if not is_replaced(bits):
        return bits & BITS64_MASK
    return double_to_bits(bits_to_single(bits & LOW_WORD_MASK))


def read_operand_as_double(bits: int) -> float:
    """Value of a slot for a double-precision consumer (after upcast check)."""
    if is_replaced(bits):
        return bits_to_single(bits & LOW_WORD_MASK)
    return bits_to_double(bits)


def read_operand_as_single(bits: int) -> int:
    """Binary32 pattern of a slot for a single-precision consumer."""
    if is_replaced(bits):
        return bits & LOW_WORD_MASK
    return single_to_bits(bits_to_double(bits))


# ---------------------------------------------------------------------------
# Width-generic variants (the lattice's per-width sentinels).
# ---------------------------------------------------------------------------


def replaced_width(bits: int) -> str | None:
    """Width name a slot was narrowed to, or None for a plain binary64."""
    return _SENTINEL_TO_WIDTH.get((bits >> 32) & 0xFFFFFFFF)


def is_replaced_at(bits: int, width: str) -> bool:
    """True if the slot carries *width*'s sentinel in its high word."""
    return ((bits >> 32) & 0xFFFFFFFF) == WIDTH_CODECS[width][0]


def make_replaced_at(width: str, narrow_bits: int) -> int:
    """Build a narrowed slot from *width*'s native bit pattern."""
    return (WIDTH_CODECS[width][0] << 32) | (narrow_bits & LOW_WORD_MASK)


def downcast_in_place_at(bits: int, width: str) -> int:
    """Narrow a slot to *width* (the generalized Figure-5 downcast).

    A slot already narrowed to *any* lattice width is first widened back
    through its own codec, so re-narrowing never stacks sentinels.
    Idempotent on slots already at *width*.
    """
    if is_replaced_at(bits, width):
        return bits
    sentinel, encode, _ = WIDTH_CODECS[width]
    return (sentinel << 32) | (encode(read_operand_as_double_any(bits)) & LOW_WORD_MASK)


def upcast_in_place_any(bits: int) -> int:
    """Widen any narrowed slot back to a plain binary64 slot."""
    width = replaced_width(bits)
    if width is None:
        return bits & BITS64_MASK
    return double_to_bits(WIDTH_CODECS[width][2](bits & LOW_WORD_MASK))


def read_operand_as_double_any(bits: int) -> float:
    """Value of a slot for a double consumer, decoding any width's sentinel."""
    width = replaced_width(bits)
    if width is None:
        return bits_to_double(bits)
    return WIDTH_CODECS[width][2](bits & LOW_WORD_MASK)
