"""Bit-level IEEE-754 manipulation and the in-place replacement scheme.

This package is the foundation of the paper's core trick (its Section 2.3
and Figure 5): a double-precision value that has been *replaced* by its
single-precision equivalent is stored **in the same 64-bit slot** — the
32-bit single occupies the low word and the high word holds the sentinel
``0x7FF4DEAD``.  The sentinel encodes a non-signalling NaN, so any
un-instrumented code that consumes a replaced value produces NaNs and
fails loudly instead of silently computing with garbage.

All values in the virtual machine (registers, memory cells, XMM lanes)
are plain Python integers holding 64-bit patterns; the helpers here are
the only code that interprets those patterns as floating point.
"""

from repro.fpbits.ieee import (
    BITS64_MASK,
    bits_to_double,
    bits_to_single,
    double_to_bits,
    single_to_bits,
    double_add,
    double_sub,
    double_mul,
    double_div,
    double_sqrt,
    double_neg,
    double_abs,
    double_min,
    double_max,
    single_add,
    single_sub,
    single_mul,
    single_div,
    single_sqrt,
    single_neg,
    single_abs,
    single_min,
    single_max,
    is_nan_bits64,
    is_nan_bits32,
)
from repro.fpbits.replace import (
    REPLACED_FLAG,
    REPLACED_FLAG_SHIFTED,
    HIGH_WORD_MASK,
    LOW_WORD_MASK,
    downcast_in_place,
    upcast_in_place,
    is_replaced,
    make_replaced,
    replaced_single_bits,
    read_operand_as_double,
    read_operand_as_single,
)

__all__ = [
    "BITS64_MASK",
    "bits_to_double",
    "bits_to_single",
    "double_to_bits",
    "single_to_bits",
    "double_add",
    "double_sub",
    "double_mul",
    "double_div",
    "double_sqrt",
    "double_neg",
    "double_abs",
    "double_min",
    "double_max",
    "single_add",
    "single_sub",
    "single_mul",
    "single_div",
    "single_sqrt",
    "single_neg",
    "single_abs",
    "single_min",
    "single_max",
    "is_nan_bits64",
    "is_nan_bits32",
    "REPLACED_FLAG",
    "REPLACED_FLAG_SHIFTED",
    "HIGH_WORD_MASK",
    "LOW_WORD_MASK",
    "downcast_in_place",
    "upcast_in_place",
    "is_replaced",
    "make_replaced",
    "replaced_single_bits",
    "read_operand_as_double",
    "read_operand_as_single",
]
