"""Figure 9: base-case instrumentation overhead (plus the Section 3.1
bit-for-bit correctness checks).

Paper: overheads of 3.4X-14.7X for ep/cg/ft/mg at classes A and C,
"in most cases ... under 20X, making this technique viable for test and
trial runs on real data".
"""

from __future__ import annotations

from conftest import emit, full_scale

from repro.experiments import fig9
from repro.experiments.tables import format_table


def test_fig9_overhead_table(benchmark):
    classes = ("A", "C") if full_scale() else ("A",)

    rows = benchmark.pedantic(
        lambda: fig9.run(classes=classes), rounds=1, iterations=1
    )
    for row in rows:
        assert row["bit_identical"], f"{row['benchmark']}: results changed!"
        overhead = float(row["overhead"].rstrip("X"))
        assert 1.0 < overhead < 20.0, "outside the paper's feasibility band"
        row["paper"] = f"{fig9.PAPER_VALUES[row['benchmark']]}X"
    emit(
        "fig9_overhead",
        format_table(
            rows,
            columns=[
                ("benchmark", "benchmark"),
                ("overhead", "overhead (ours)"),
                ("paper", "overhead (paper)"),
                ("bit_identical", "bit-identical"),
                ("text_growth", "text growth"),
            ],
            title="Figure 9 — base-case overhead (all-double snippets)",
        ),
    )


def test_bitforbit_replacement(benchmark):
    """Section 3.1: instrumented all-single == manually converted build,
    for every benchmark in the suite."""

    def check():
        return {
            bench: fig9.check_single_bitforbit(bench, "W")
            for bench in ("bt", "cg", "ep", "ft", "lu", "mg", "sp")
        }

    results = benchmark.pedantic(check, rounds=1, iterations=1)
    assert all(results.values()), f"bit-for-bit mismatches: {results}"
    emit(
        "bitforbit",
        format_table(
            [{"benchmark": b, "bit_for_bit": ok} for b, ok in results.items()],
            title="Section 3.1 — instrumented all-single vs manual conversion",
        ),
    )
