"""Lattice descent search: the cost and yield of widths below f32.

Runs the breadth-first search four times per workload:

* **binary** — the paper's two-level search, no lattice configured;
* **binary lattice** — ``SearchOptions(lattice="f64,f32")``, which must
  be *byte-identical* to the binary run (same configs tested, same
  serialized final configuration) — the subsystem's
  backward-compatibility anchor;
* **unseeded descent** — the full ``f64,f32,bf16,f16`` lattice with
  analysis off: every settled f32 site is re-evaluated at each narrower
  rung;
* **seeded descent** — the same lattice with the shadow-value analysis
  on, so observed magnitude ranges prune rungs a site provably cannot
  fit (``SearchGuide.predict_unfit``, see docs/LATTICE.md).

Seeding only steers where evaluations are spent, so seeded and unseeded
descents must compose identical final configurations; the seeded run
must never test more.  The table reports evaluation counts, wall times,
and how many sites settled below f32 at each width.

Besides the human-readable table this merges a machine-readable record
into ``results/BENCH_search.json`` (under the ``"lattice"`` key, next
to the incremental and guided records) so future PRs have a perf
trajectory.

Standalone usage (CI's lattice-smoke job asserts the same invariants
inline)::

    PYTHONPATH=src python benchmarks/bench_lattice_search.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from conftest import RESULTS_DIR, emit, full_scale, merge_json_rows

from repro.config.fileformat import dump_config
from repro.search import SearchEngine, SearchOptions
from repro.workloads import make_workload

FULL_SPEC = "f64,f32,bf16,f16"

#: mg.W first — it is the workload known to settle a site below f32,
#: so it carries the strict narrow-site and seeding acceptances.
WORKLOADS = (("mg", "W"), ("cg", "T"))
FULL_WORKLOADS = (("mg", "W"), ("cg", "T"), ("cg", "S"), ("ep", "T"))


def _run(bench: str, klass: str, options: SearchOptions | None = None):
    engine = SearchEngine(make_workload(bench, klass), options or SearchOptions())
    start = time.perf_counter()
    result = engine.run()
    return result, time.perf_counter() - start


def measure(bench: str, klass: str) -> dict:
    name = f"{bench}.{klass}"
    binary, binary_wall = _run(bench, klass)
    twolevel, _ = _run(bench, klass, SearchOptions(lattice="f64,f32"))
    unseeded, unseeded_wall = _run(
        bench, klass, SearchOptions(lattice=FULL_SPEC, analysis=False)
    )
    seeded, seeded_wall = _run(
        bench, klass, SearchOptions(lattice=FULL_SPEC, analysis=True)
    )

    # Backward-compatibility anchor: the explicit two-level lattice is
    # the pre-lattice binary search, bit for bit.
    assert twolevel.configs_tested == binary.configs_tested, (
        f"{name}: binary lattice tested {twolevel.configs_tested} configs, "
        f"binary search {binary.configs_tested}"
    )
    assert dump_config(twolevel.final_config) == dump_config(binary.final_config), (
        f"{name}: binary lattice composed a different final config"
    )

    # Soundness: seeding steers evaluations only — both descents must
    # compose the same final configuration, and descent never flips an
    # f32-level verdict (narrowed sites were SINGLE in the binary run).
    seeded_p = seeded.final_config.instruction_policies()
    unseeded_p = unseeded.final_config.instruction_policies()
    assert seeded_p == unseeded_p, (
        f"{name}: seeded descent composed a different final config"
    )
    base_p = binary.final_config.instruction_policies()
    widths = {"BF16": 0, "HALF": 0}
    for addr, policy in seeded_p.items():
        if policy.name in widths:
            widths[policy.name] += 1
            assert base_p[addr].name == "SINGLE", hex(addr)
        else:
            assert base_p[addr] is policy, hex(addr)
    assert seeded.configs_tested <= unseeded.configs_tested, (
        f"{name}: seeding added evaluations "
        f"({seeded.configs_tested} vs {unseeded.configs_tested})"
    )

    descent_extra = unseeded.configs_tested - binary.configs_tested
    saved = unseeded.configs_tested - seeded.configs_tested
    return {
        "benchmark": name,
        "binary_configs": binary.configs_tested,
        "unseeded_configs": unseeded.configs_tested,
        "seeded_configs": seeded.configs_tested,
        "descent_extra_configs": descent_extra,
        "seeding_saved": saved,
        "seeding_saved_pct": round(
            100.0 * saved / max(1, descent_extra), 1
        ),
        "bf16_sites": widths["BF16"],
        "f16_sites": widths["HALF"],
        "binary_wall_s": round(binary_wall, 4),
        "unseeded_wall_s": round(unseeded_wall, 4),
        "seeded_wall_s": round(seeded_wall, 4),
        "binary_identical": True,
        "identical_final": True,
    }


def _format(rows: list[dict]) -> str:
    lines = ["Lattice descent search — rungs below f32 (f64,f32,bf16,f16)", ""]
    header = (
        f"{'benchmark':<10} {'binary':>7} {'descent':>8} {'seeded':>7} "
        f"{'saved':>12} {'bf16':>5} {'f16':>4} {'wall':>20}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row['benchmark']:<10} {row['binary_configs']:>7} "
            f"{row['unseeded_configs']:>8} {row['seeded_configs']:>7} "
            f"{row['seeding_saved']:>5} ({row['seeding_saved_pct']:>4.1f}%) "
            f"{row['bf16_sites']:>5} {row['f16_sites']:>4} "
            f"{row['unseeded_wall_s']:>8.2f}s -> {row['seeded_wall_s']:>7.2f}s"
        )
    return "\n".join(lines)


def _assert_acceptance(rows: list[dict]) -> None:
    for row in rows:
        bench = row["benchmark"].split(".")[0]
        if bench == "mg":
            assert row["bf16_sites"] + row["f16_sites"] > 0, (
                f"{row['benchmark']}: descent narrowed nothing below f32"
            )
            assert row["seeded_configs"] < row["unseeded_configs"], (
                f"{row['benchmark']}: width seeding saved nothing "
                f"({row['seeded_configs']} vs {row['unseeded_configs']})"
            )


def run_benchmark() -> dict:
    workloads = FULL_WORKLOADS if full_scale() else WORKLOADS
    rows = [measure(bench, klass) for bench, klass in workloads]
    _assert_acceptance(rows)
    payload = {"rows": rows, "primary": rows[0]}
    emit("lattice_search", _format(rows))
    merge_json_rows("BENCH_search", payload, section="lattice")
    print(f"merged into {RESULTS_DIR / 'BENCH_search.json'}")
    return payload


def test_lattice_search(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    primary = payload["primary"]
    # Acceptance: mg.W settles at least one site below f32 and the
    # analysis-seeded descent tests strictly fewer configurations.
    assert primary["bf16_sites"] + primary["f16_sites"] > 0
    assert primary["seeded_configs"] < primary["unseeded_configs"], primary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the payload to this path (besides results/)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a baseline json; exit 1 if seeding stops saving",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        saved = payload["primary"]["seeding_saved"]
        floor = baseline["seeding_saved"] / 2.0
        print(
            f"seeding saved {saved} configs vs baseline "
            f"{baseline['seeding_saved']} (floor {floor:.1f})"
        )
        if saved < floor:
            print(
                "PERF REGRESSION: width seeding saves less than half "
                "the baseline evaluations",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
