"""Substrate micro-benchmarks: VM dispatch, instrumentation, compilation.

Not a paper figure — these track the performance of the reproduction's
own machinery (useful when modifying the interpreter or the rewriter).

The dispatch benchmark measures the fused superinstruction path against
the per-instruction reference loop on the same program and writes an
``interpreter`` section into ``results/BENCH_search.json`` so the perf
trajectory captures raw instructions/second alongside search throughput.
"""

from __future__ import annotations

import time

from conftest import emit, merge_json_rows

from repro.config import Config, build_tree
from repro.instrument import instrument
from repro.vm import VM, fuse, run_program
from repro.workloads import make_nas


def measure_dispatch(bench: str = "ep", klass: str = "W", repeats: int = 3) -> dict:
    """Instructions/second, per-instruction loop vs fused dispatch.

    Same program, same VM parameters; only the dispatch strategy
    differs.  The two runs must agree on every observable (outputs,
    cycles, steps) — the speedup is pure dispatch overhead removed.
    """
    program = make_nas(bench, klass).program
    walls = {}
    results = {}
    for label, fused in (("per_instruction", False), ("fused", True)):
        best = float("inf")
        for _ in range(repeats):
            vm = VM(program, fused=fused)
            start = time.perf_counter()
            result = vm.run()
            best = min(best, time.perf_counter() - start)
        walls[label] = best
        results[label] = result

    ref, fst = results["per_instruction"], results["fused"]
    assert fst.outputs == ref.outputs, "fused dispatch changed program output"
    assert fst.cycles == ref.cycles
    assert fst.steps == ref.steps

    steps = ref.steps
    return {
        "benchmark": f"{bench}.{klass}",
        "steps": steps,
        "per_instruction_wall_s": round(walls["per_instruction"], 4),
        "fused_wall_s": round(walls["fused"], 4),
        "per_instruction_ips": round(steps / walls["per_instruction"]),
        "fused_ips": round(steps / walls["fused"]),
        "dispatch_speedup": round(
            walls["per_instruction"] / walls["fused"], 2
        ),
        "compiled_runs": fuse.compiled_runs(),
    }


def _format_dispatch(row: dict) -> str:
    return "\n".join(
        [
            "Interpreter dispatch — per-instruction loop vs fused runs",
            "",
            f"{row['benchmark']}: {row['steps']} instructions "
            f"(byte-identical results)",
            f"  per-instruction {row['per_instruction_ips']:>12,} instr/s",
            f"  fused           {row['fused_ips']:>12,} instr/s",
            f"  speedup         {row['dispatch_speedup']:>11.2f}x   "
            f"({row['compiled_runs']} compiled run bodies process-wide)",
        ]
    )


def test_vm_dispatch_rate(benchmark):
    workload = make_nas("ep", "W")
    program = workload.program

    result = benchmark(lambda: run_program(program).steps)
    assert result > 10_000


def test_dispatch_fused_vs_reference(benchmark):
    row = benchmark.pedantic(measure_dispatch, rounds=1, iterations=1)
    emit("interpreter_dispatch", _format_dispatch(row))
    merge_json_rows(
        "BENCH_search",
        {"rows": [row], "primary": row},
        section="interpreter",
    )
    # Fused dispatch exists to beat the reference loop; a ratio at or
    # below 1.0 means the fast path stopped paying for itself.
    assert row["dispatch_speedup"] > 1.0, row


def test_vm_load_precompile(benchmark):
    program = make_nas("cg", "W").program
    vm = benchmark(lambda: VM(program))
    assert vm.entry_index() >= 0


def test_instrumentation_rewrite(benchmark):
    program = make_nas("mg", "W").program
    tree = build_tree(program)
    config = Config.all_single(tree)

    instrumented = benchmark(lambda: instrument(program, config))
    assert instrumented.growth > 1.0


def test_compile_pipeline(benchmark):
    from repro.workloads.nas import cg

    workload = benchmark(lambda: cg.make("W").program)
    assert workload.stats()["instructions"] > 100
