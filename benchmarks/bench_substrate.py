"""Substrate micro-benchmarks: VM dispatch, instrumentation, compilation.

Not a paper figure — these track the performance of the reproduction's
own machinery (useful when modifying the interpreter or the rewriter).
"""

from __future__ import annotations

from repro.config import Config, build_tree
from repro.instrument import instrument
from repro.vm import VM, run_program
from repro.workloads import make_nas


def test_vm_dispatch_rate(benchmark):
    workload = make_nas("ep", "W")
    program = workload.program

    result = benchmark(lambda: run_program(program).steps)
    assert result > 10_000


def test_vm_load_precompile(benchmark):
    program = make_nas("cg", "W").program
    vm = benchmark(lambda: VM(program))
    assert vm.entry_index() >= 0


def test_instrumentation_rewrite(benchmark):
    program = make_nas("mg", "W").program
    tree = build_tree(program)
    config = Config.all_single(tree)

    instrumented = benchmark(lambda: instrument(program, config))
    assert instrumented.growth > 1.0


def test_compile_pipeline(benchmark):
    from repro.workloads.nas import cg

    workload = benchmark(lambda: cg.make("W").program)
    assert workload.stats()["instructions"] > 100
