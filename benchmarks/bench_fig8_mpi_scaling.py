"""Figure 8: NAS MPI scaling of the instrumentation overhead.

Paper: "the overall overhead decreases as the number of threads on a
single core increases" — EP/CG/FT/MG at 1..8 MPI ranks, class A.  The
shape to reproduce: overhead is highest serial and falls with rank count
as (uninstrumented) communication takes a larger runtime share; EP, which
barely communicates, stays nearly flat.
"""

from __future__ import annotations

from conftest import emit, full_scale

from repro.experiments import fig8
from repro.experiments.tables import format_table


def test_fig8_scaling(benchmark):
    klass = "A" if full_scale() else "W"
    ranks = (1, 2, 4, 8)

    rows = benchmark.pedantic(
        lambda: fig8.run(klass=klass, ranks=ranks), rounds=1, iterations=1
    )

    for row in rows:
        assert fig8.trend_is_nonincreasing(row, ranks), (
            f"{row['benchmark']}: overhead grew with rank count"
        )
    if full_scale():
        # At class A the comm-light benchmarks (ep and ft: a handful of
        # scalar reductions each) stay nearly flat, while the comm-heavy
        # ones (cg and mg: vector all-reduces every iteration) dilute
        # fastest — the contrast the paper's figure shows.
        def spread(row):
            return row["_raw_P1"] - row["_raw_P8"]

        by_name = {r["benchmark"].split(".")[0]: r for r in rows}
        light = max(spread(by_name["ep"]), spread(by_name["ft"]))
        heavy = min(spread(by_name["cg"]), spread(by_name["mg"]))
        assert light <= heavy + 0.05

    emit(
        "fig8_mpi_scaling",
        format_table(
            rows,
            columns=[("benchmark", "benchmark")] + [(f"P{p}", f"P={p}") for p in ranks],
            title=f"Figure 8 — overhead vs MPI ranks (class {klass})",
        ),
    )
