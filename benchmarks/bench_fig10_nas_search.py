"""Figure 10: automatic-search results across the NAS suite.

Paper columns: candidates, configurations tested, static %, dynamic %,
final verification.  Shape to reproduce (not absolute numbers — our
analogues are interpreter-scale):

* ft admits almost no dynamic replacement; cg very little; ep/mg a
  moderate share; bt/lu a large share;
* some final (union) configurations fail even though every piece passed
  individually — the paper's non-composability observation;
* the search evaluates far fewer configurations than candidates-level
  exhaustion (2^n).
"""

from __future__ import annotations

from conftest import emit, full_scale

from repro.experiments import fig10
from repro.experiments.tables import format_table


def test_fig10_search_table(benchmark):
    classes = ("W", "A") if full_scale() else ("W",)

    rows = benchmark.pedantic(
        lambda: fig10.run(classes=classes), rounds=1, iterations=1
    )

    by_bench = {row["benchmark"]: row for row in rows}
    suffix = classes[0]

    # Sensitivity ordering (the paper's spectrum).
    assert by_bench[f"ft.{suffix}"]["dynamic_pct"] < 10.0
    assert by_bench[f"cg.{suffix}"]["dynamic_pct"] < 50.0
    assert by_bench[f"bt.{suffix}"]["dynamic_pct"] > 60.0
    assert by_bench[f"lu.{suffix}"]["dynamic_pct"] > 60.0
    assert (
        by_bench[f"ft.{suffix}"]["dynamic_pct"]
        < by_bench[f"ep.{suffix}"]["dynamic_pct"]
        < by_bench[f"bt.{suffix}"]["dynamic_pct"]
    )
    # At least one final union fails (non-composability).
    assert any(row["final"] == "fail" for row in rows)
    # And most benchmarks still produce a passing mixed configuration.
    assert sum(1 for row in rows if row["final"] == "pass") >= len(rows) // 2

    for row in rows:
        paper = fig10.PAPER_VALUES[row["benchmark"]]
        row["paper_dyn"] = paper[3]
        row["paper_final"] = paper[4]
    emit(
        "fig10_nas_search",
        format_table(
            rows,
            columns=[
                ("benchmark", "benchmark"),
                ("candidates", "candidates"),
                ("tested", "tested"),
                ("static_pct", "static %"),
                ("dynamic_pct", "dynamic %"),
                ("final", "final"),
                ("paper_dyn", "paper dyn %"),
                ("paper_final", "paper final"),
            ],
            title="Figure 10 — automatic search results",
        ),
    )
