"""Figure 11: SuperLU linear-solver threshold sweep.

Paper findings reproduced in shape:

* the single build is faster than the double build (paper: 1.16X);
* with a threshold just above the single build's own error, ~all of the
  solver is replaceable — "our tool can find all replacements inserted
  manually by an expert";
* stricter thresholds => monotonically fewer static/dynamic replacements;
* the final composed error stays below the search threshold.
"""

from __future__ import annotations

import math

from conftest import emit, full_scale

from repro.experiments import fig11
from repro.experiments.tables import format_table


def test_fig11_threshold_sweep(benchmark):
    klass = "W"
    thresholds = fig11.DEFAULT_THRESHOLDS if full_scale() else (1e-3, 1e-5, 3e-6, 1e-7)

    def sweep():
        meta = fig11.solver_errors(klass)
        rows = fig11.run(klass=klass, thresholds=thresholds)
        return meta, rows

    meta, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    assert meta["single_speedup"] > 1.0
    assert meta["double_error"] < meta["single_error"]

    # Loosest threshold (just above the single build's error): everything
    # replaceable — the manual-conversion replication.
    assert thresholds[0] > meta["single_error"]
    assert rows[0]["_raw_static"] > 0.95
    assert rows[0]["_raw_dynamic"] > 0.95

    # Monotone trend: stricter threshold, fewer replacements.
    statics = [row["_raw_static"] for row in rows]
    dynamics = [row["_raw_dynamic"] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(statics, statics[1:]))
    assert all(b <= a + 0.05 for a, b in zip(dynamics, dynamics[1:]))

    # Whenever the composed configuration verifies, its error sits below
    # the threshold used during the search (the paper notes it "tends to
    # be much lower"); a failing union may land just above it — the same
    # non-composability Figure 10 shows.
    for threshold, row in zip(thresholds, rows):
        err = row["_raw_final_error"]
        if row["_raw_final_verified"] and not math.isnan(err):
            assert err < threshold

    header = (
        f"SuperLU analogue (class {klass}): double error "
        f"{meta['double_error']:.2e}, single error {meta['single_error']:.2e}, "
        f"single-build speedup {meta['single_speedup']:.2f}X (paper: 1.16X)\n"
    )
    emit(
        "fig11_superlu",
        header
        + format_table(
            rows,
            columns=[
                ("threshold", "threshold"),
                ("static_pct", "static %"),
                ("dynamic_pct", "dynamic %"),
                ("final_error", "final error"),
                ("final", "final"),
                ("tested", "tested"),
            ],
            title="Figure 11 — SuperLU threshold sweep",
        ),
    )
