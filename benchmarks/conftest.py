"""Benchmark-harness helpers.

Every ``bench_fig*.py`` regenerates one table/figure of the paper: it
prints the reproduced table next to the paper's numbers and appends it to
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from a run.

Set ``REPRO_BENCH_FULL=1`` to run the paper-scale parameters (both
problem classes, full threshold sweeps); the default keeps a full
``pytest benchmarks/ --benchmark-only`` run in the minutes range.
"""

from __future__ import annotations

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable benchmark record under results/.

    Perf-trajectory files (``BENCH_*.json``) let later PRs compare
    against this run without parsing the human-readable tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
