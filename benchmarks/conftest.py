"""Benchmark-harness helpers.

Every ``bench_fig*.py`` regenerates one table/figure of the paper: it
prints the reproduced table next to the paper's numbers and appends it to
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from a run.

Set ``REPRO_BENCH_FULL=1`` to run the paper-scale parameters (both
problem classes, full threshold sweeps); the default keeps a full
``pytest benchmarks/ --benchmark-only`` run in the minutes range.
"""

from __future__ import annotations

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable benchmark record under results/.

    Perf-trajectory files (``BENCH_*.json``) let later PRs compare
    against this run without parsing the human-readable tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def merge_json_rows(name: str, payload: dict, section: str | None = None) -> pathlib.Path:
    """Merge a ``{"rows": [...], "primary": ...}`` payload into
    ``results/<name>.json`` without duplicating or clobbering.

    Rows are keyed by their ``"benchmark"`` field (``bench.class``):
    re-running the same workload *replaces* its row in place rather than
    appending a second copy, and rows for other workloads — plus any
    other top-level sections of the file — are preserved.  ``section``
    nests the record under a top-level key (the guided bench shares
    ``BENCH_search.json`` with the incremental record this way).
    A missing or unparseable file starts fresh.
    """
    path = RESULTS_DIR / f"{name}.json"
    existing: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict):
                existing = loaded
        except ValueError:
            pass
    target = existing.setdefault(section, {}) if section else existing
    fresh = {row["benchmark"]: row for row in payload.get("rows", [])}
    rows = []
    for row in target.get("rows", []):
        key = row.get("benchmark")
        rows.append(fresh.pop(key) if key in fresh else row)
    rows.extend(fresh.values())
    target["rows"] = rows
    for key, value in payload.items():
        if key != "rows":
            target[key] = value
    return emit_json(name, existing)
