"""Ablations: Section 2.2 search optimizations and Section 2.5
future-work features (implemented here).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import ablation
from repro.experiments.tables import format_table


def test_search_optimization_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation.search_optimizations("mg", "W"), rounds=1, iterations=1
    )
    by_variant = {row["variant"]: row for row in rows}
    # All instruction-granularity variants reach the same conclusion.
    assert (
        by_variant["full"]["static_pct"]
        == by_variant["no-partition"]["static_pct"]
        == by_variant["no-prioritize"]["static_pct"]
    )
    # Coarser stop levels converge with fewer tests (paper Section 2.2).
    assert by_variant["stop-at-functions"]["tested"] <= by_variant["full"]["tested"]
    assert by_variant["stop-at-blocks"]["tested"] <= by_variant["full"]["tested"]
    emit(
        "ablation_search",
        format_table(rows, title="Ablation — search optimizations (mg.W)"),
    )


def test_redundant_check_elimination(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation.check_elimination("cg", "W"), rounds=1, iterations=1
    )
    for row in rows:
        assert row["identical_outputs"]
        assert row["cycles_optimized"] <= row["cycles_plain"]
    all_double = next(r for r in rows if r["scenario"] == "all-double")
    assert all_double["checks_skipped"] > 0
    assert all_double["saving_pct"] > 0
    emit(
        "ablation_dataflow",
        format_table(rows, title="Ablation — redundant-check elimination (Section 2.5)"),
    )


def test_second_phase_composition(benchmark):
    """The paper's suggested second search phase: when the union of
    individually passing replacements fails, find a composable subset.
    Runs on the benchmarks whose Figure 10 unions fail."""
    from repro.search.bfs import SearchEngine, SearchOptions
    from repro.workloads import make_nas

    def refine_all():
        rows = []
        for bench in ("bt", "mg", "sp"):
            workload = make_nas(bench, "W")
            result = SearchEngine(workload, SearchOptions(refine=True)).run()
            rows.append(
                {
                    "benchmark": f"{bench}.W",
                    "union_static": round(result.static_pct * 100, 1),
                    "union_dyn": round(result.dynamic_pct * 100, 1),
                    "union_final": "pass" if result.final_verified else "fail",
                    "refined_static": round(result.refined_static_pct * 100, 1),
                    "refined_dyn": round(result.refined_dynamic_pct * 100, 1),
                    "refined_final": "pass" if result.refined_verified else "fail",
                    "drops": result.refine_drops,
                    "_verified": result.refined_verified,
                    "_union_verified": result.final_verified,
                }
            )
        return rows

    rows = benchmark.pedantic(refine_all, rounds=1, iterations=1)
    for row in rows:
        # wherever the union fails, refinement must recover a verified
        # (smaller) mixed-precision configuration
        if not row["_union_verified"]:
            assert row["_verified"], f"{row['benchmark']}: refinement failed"
            assert row["refined_dyn"] <= row["union_dyn"]
    emit(
        "ablation_refine",
        format_table(
            [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows],
            title="Second search phase — composition refinement (paper §3.1 suggestion)",
        ),
    )


def test_transcendental_special_handling(benchmark):
    rows = benchmark.pedantic(
        ablation.transcendental_handling, rounds=1, iterations=1
    )
    by_variant = {row["variant"]: row for row in rows}
    # Library internals balloon the candidate pool and the search cost —
    # the paper's motivation for special-casing libm.
    assert by_variant["library"]["candidates"] > by_variant["instruction"]["candidates"]
    assert by_variant["library"]["tested"] >= by_variant["instruction"]["tested"]
    emit(
        "ablation_transcendentals",
        format_table(rows, title="Ablation — transcendental handling (Section 2.5)"),
    )


def test_snippet_streamlining(benchmark):
    """Section 2.5 future work, implemented: streamlined snippets reduce
    the base-case overhead substantially with identical results."""
    klass = "A"
    rows = benchmark.pedantic(
        lambda: ablation.snippet_streamlining(klass=klass), rounds=1, iterations=1
    )
    for row in rows:
        assert row["_lean"] < row["_plain"]
        assert row["_lean"] > 1.0
    emit(
        "ablation_streamline",
        format_table(
            [{k: v for k, v in r.items() if not k.startswith("_")} for r in rows],
            title=f"Ablation — snippet streamlining (Section 2.5), class {klass}",
        ),
    )
