"""Section 3.2: the AMG microkernel end-to-end experiment.

Paper: the whole kernel verified as replaceable, 1.2X analysis overhead,
and a 175.48s -> 95.25s (1.84X) speedup after manual conversion.
"""

from __future__ import annotations

from conftest import emit, full_scale

from repro.experiments import amg
from repro.experiments.tables import format_table


def test_amg_end_to_end(benchmark):
    klass = "A" if full_scale() else "W"
    result = benchmark.pedantic(lambda: amg.run(klass), rounds=1, iterations=1)

    # 1. the whole kernel runs in single precision and still verifies
    assert result["whole_kernel_single_passes"]
    # 2. the search discovers this at module level, nearly for free
    assert result["search_configs_tested"] <= 3
    assert result["search_final"] == "pass"
    assert result["search_static_pct"] == 100.0
    # 3. the converted build is genuinely faster
    assert result["_raw_speedup"] > 1.3

    rows = [
        {"quantity": "whole-kernel single passes", "ours": result["whole_kernel_single_passes"], "paper": True},
        {"quantity": "analysis overhead", "ours": result["analysis_overhead"], "paper": "1.2X"},
        {"quantity": "manual conversion speedup", "ours": result["manual_speedup"], "paper": "1.84X (175.48s -> 95.25s)"},
        {"quantity": "search configs tested", "ours": result["search_configs_tested"], "paper": "n/a"},
    ]
    emit(
        "amg_speedup",
        format_table(rows, title=f"Section 3.2 — AMG microkernel ({result['benchmark']})"),
    )
