"""Incremental evaluation substrate: warm vs cold search throughput.

Runs the same instruction-level BFS search twice — once with the
incremental caches disabled (every config pays full instrumentation and
VM compilation, the pre-substrate behaviour) and once with them enabled
— and reports configs/second for each, plus their ratio.  The two
searches must agree bit-for-bit on everything but wall time: same
candidate verdicts, same cycle counts, same final configuration.

Besides the human-readable table this writes a machine-readable
``BENCH_search.json`` under ``results/`` so future PRs have a perf
trajectory to compare against; CI's perf-smoke job checks absolute
cold/warm configs-per-second floors from
``benchmarks/baselines/incremental.json``.  The gate moved off the
warm/cold *ratio* when fused superinstruction dispatch made the cold
path several times faster: a cold-path speedup shrinks the ratio while
making every search strictly faster, which a ratio gate would punish.

Standalone usage (CI uses this form)::

    PYTHONPATH=src python benchmarks/bench_incremental_search.py \
        --check benchmarks/baselines/incremental.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from conftest import emit, full_scale, merge_json_rows

from repro.profile import CycleObserver
from repro.search import SearchEngine, SearchOptions
from repro.vm.machine import VM
from repro.workloads import make_nas


def _timed_search(bench: str, klass: str, incremental: bool):
    """One instruction-level search; returns (result, wall_seconds).

    The workload is rebuilt fresh each time (no shared instrumentation
    state) and the baseline/profile runs — identical in both modes —
    are excluded from the timed region.
    """
    workload = make_nas(bench, klass)
    workload.baseline()
    workload.profile()
    options = SearchOptions(stop_level="instruction", incremental=incremental)
    start = time.perf_counter()
    result = SearchEngine(workload, options).run()
    return result, time.perf_counter() - start


def measure(bench: str = "cg", klass: str = "T", repeats: int = 3) -> dict:
    """Cold vs warm throughput for one benchmark; best-of-``repeats``."""
    cold_res, cold_wall = None, float("inf")
    warm_res, warm_wall = None, float("inf")
    for _ in range(repeats):
        res, wall = _timed_search(bench, klass, incremental=False)
        if wall < cold_wall:
            cold_res, cold_wall = res, wall
        res, wall = _timed_search(bench, klass, incremental=True)
        if wall < warm_wall:
            warm_res, warm_wall = res, wall

    # Identical search, identical verdicts — only the wall time may move.
    assert cold_res.final_config.flags == warm_res.final_config.flags
    assert cold_res.static_pct == warm_res.static_pct
    assert cold_res.dynamic_pct == warm_res.dynamic_pct
    assert [(r.label, r.passed, r.cycles) for r in cold_res.history] == [
        (r.label, r.passed, r.cycles) for r in warm_res.history
    ], "incremental caches changed a search outcome"

    # Both modes resolve the same configs; the warm path just answers
    # some from the semantic cache.  Throughput is configs resolved per
    # second, so the two numbers divide the same numerator.
    configs = len(cold_res.history)
    return {
        "benchmark": f"{bench}.{klass}",
        "configs": configs,
        "cold_wall_s": round(cold_wall, 4),
        "warm_wall_s": round(warm_wall, 4),
        "cold_configs_per_s": round(configs / cold_wall, 2),
        "warm_configs_per_s": round(configs / warm_wall, 2),
        "warm_evaluations": warm_res.configs_tested,
        "speedup": round(cold_wall / warm_wall, 2),
        "static_pct": round(cold_res.static_pct * 100, 1),
    }


def measure_profiling_overhead(
    bench: str = "cg", klass: str = "S", repeats: int = 5
) -> dict:
    """Guard: the profiling subsystem costs nothing unless asked for.

    Runs the workload's VM four ways — default (no profiling), with the
    profiling knobs explicitly off, with the native ``profile=True``
    counting loop, and with a :class:`CycleObserver` on the observer
    hook — and asserts the deterministic outputs (cycle clock, step
    count, output values) are byte-identical everywhere: neither the
    *existence* of the profiling machinery nor its use may perturb the
    cycle model.  Wall time of the explicitly-disabled run must stay
    within generous noise of the default run (they are the same code
    path; a divergence means the disabled path started paying for
    hooks).  The enabled paths' overhead is recorded, not bounded.
    """
    workload = make_nas(bench, klass)
    program, params = workload.program, workload.vm_params()

    def timed(make_kwargs):
        best_wall, result = float("inf"), None
        for _ in range(repeats):
            vm = VM(program, **make_kwargs(), **params)
            start = time.perf_counter()
            result = vm.run()
            best_wall = min(best_wall, time.perf_counter() - start)
        return result, best_wall

    plain_res, plain_wall = timed(dict)
    disabled_res, disabled_wall = timed(
        lambda: {"profile": False, "observer": None}
    )
    profiled_res, profiled_wall = timed(lambda: {"profile": True})
    observed_res, observed_wall = timed(
        lambda: {"observer": CycleObserver()}
    )

    for name, res in (
        ("disabled", disabled_res),
        ("profiled", profiled_res),
        ("observed", observed_res),
    ):
        assert res.cycles == plain_res.cycles, (
            f"{name} run changed the cycle clock: "
            f"{res.cycles} != {plain_res.cycles}"
        )
        assert res.steps == plain_res.steps, name
        assert res.values() == plain_res.values(), (
            f"{name} run changed program output"
        )

    # Same code path, so only scheduler noise may separate them; 1.5x
    # either way is far beyond any observed jitter on these runs.
    assert disabled_wall <= plain_wall * 1.5 and plain_wall <= disabled_wall * 1.5, (
        f"profiling-disabled run left the noise band: "
        f"default {plain_wall:.4f}s vs disabled {disabled_wall:.4f}s"
    )

    return {
        "benchmark": f"{bench}.{klass}",
        "cycles": plain_res.cycles,
        "plain_wall_s": round(plain_wall, 4),
        "disabled_wall_s": round(disabled_wall, 4),
        "profiled_wall_s": round(profiled_wall, 4),
        "observer_wall_s": round(observed_wall, 4),
        "disabled_ratio": round(disabled_wall / plain_wall, 3),
        "profiled_ratio": round(profiled_wall / plain_wall, 3),
        "observer_ratio": round(observed_wall / plain_wall, 3),
    }


def _format_overhead(row: dict) -> str:
    return "\n".join(
        [
            "Profiling overhead — VM wall time relative to the default run",
            "",
            f"{row['benchmark']}: {row['cycles']} cycles (byte-identical in "
            f"all modes)",
            f"  default   {row['plain_wall_s']:>8.4f}s   1.000x",
            f"  disabled  {row['disabled_wall_s']:>8.4f}s   "
            f"{row['disabled_ratio']:.3f}x",
            f"  profile=True {row['profiled_wall_s']:>5.4f}s   "
            f"{row['profiled_ratio']:.3f}x",
            f"  observer  {row['observer_wall_s']:>8.4f}s   "
            f"{row['observer_ratio']:.3f}x",
        ]
    )


def _format(rows: list[dict]) -> str:
    lines = ["Incremental evaluation — search throughput (cold vs warm)", ""]
    header = f"{'benchmark':<10} {'configs':>7} {'cold cfg/s':>10} {'warm cfg/s':>10} {'speedup':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row['benchmark']:<10} {row['configs']:>7} "
            f"{row['cold_configs_per_s']:>10.1f} {row['warm_configs_per_s']:>10.1f} "
            f"{row['speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def run_benchmark(klass: str = "T") -> dict:
    benches = ["cg", "mg", "lu"] if full_scale() else ["cg"]
    rows = [measure(bench, klass) for bench in benches]
    payload = {"rows": rows, "primary": rows[0]}
    emit("incremental_search", _format(rows))
    path = merge_json_rows("BENCH_search", payload)
    overhead = measure_profiling_overhead()
    emit("profiling_overhead", _format_overhead(overhead))
    merge_json_rows(
        "BENCH_search",
        {"rows": [overhead], "primary": overhead},
        section="profiling_overhead",
    )
    print(f"wrote {path}")
    return payload


#: absolute throughput floors for the CG instruction-level search
#: (configs/s, generous noise margin below measured ~94 cold / ~165
#: warm with fused dispatch).  Keep in sync with
#: benchmarks/baselines/incremental.json.
COLD_FLOOR = 55.0
WARM_FLOOR = 110.0


def test_incremental_search_speedup(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    primary = payload["primary"]
    # Acceptance: absolute cold and warm throughput floors on the CG
    # instruction-level search.  The warm path must also never lose to
    # the cold path — the caches may not make evaluation slower.
    assert primary["cold_configs_per_s"] >= COLD_FLOOR, primary
    assert primary["warm_configs_per_s"] >= WARM_FLOOR, primary
    assert primary["speedup"] >= 1.0, primary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="cg", help="NAS benchmark name")
    parser.add_argument("--class", dest="klass", default="T", help="problem class")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the payload to this path (besides results/)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="enforce cold/warm configs-per-second floors from a baseline json",
    )
    args = parser.parse_args(argv)

    row = measure(args.bench, args.klass)
    payload = {"rows": [row], "primary": row}
    emit("incremental_search", _format([row]))
    merge_json_rows("BENCH_search", payload)
    overhead = measure_profiling_overhead()
    emit("profiling_overhead", _format_overhead(overhead))
    merge_json_rows(
        "BENCH_search",
        {"rows": [overhead], "primary": overhead},
        section="profiling_overhead",
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failed = False
        for kind in ("cold", "warm"):
            key = f"{kind}_configs_per_s"
            floor = baseline[key]
            print(f"{kind} {row[key]:.2f} configs/s (floor {floor:.2f})")
            if row[key] < floor:
                print(
                    f"PERF REGRESSION: {kind} throughput fell below the "
                    f"baseline floor",
                    file=sys.stderr,
                )
                failed = True
        if row["speedup"] < 1.0:
            print(
                "PERF REGRESSION: warm path slower than cold", file=sys.stderr
            )
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
