"""Analysis-guided search: evaluations and wall time saved by guidance.

Runs the breadth-first search three times per workload — unguided (the
paper's behaviour, ``analysis=False``), guided by the shadow-value
analysis (``analysis=True``: one observed run up front, singleton
channels pruned on their exact "fail" verdicts), and in economics mode
(``analysis="auto"``: the engine consults what the guided run measured
and skips the shadow run where it cost more wall time than the prunes
saved — mg.W's guided search was slower end-to-end than the unguided
one).  The guided wall time *includes* the analysis run itself, so the
reduction is the real end-to-end saving.

All searches must compose identical final configurations (the
subsystem's soundness contract); the guided one must test strictly
fewer configurations on the cg and mg workloads (the acceptance the
differential tests also assert).  The auto run's evaluation count must
match whichever fixed mode its decision selected.

Besides the human-readable table this merges a machine-readable record
into ``results/BENCH_search.json`` (under the ``"guided"`` key, next to
the incremental-substrate record) so future PRs have a perf trajectory;
CI's perf-smoke job checks the saving against
``benchmarks/baselines/analysis_guided.json``.

Standalone usage (CI uses this form)::

    PYTHONPATH=src python benchmarks/bench_analysis_guided_search.py \
        --check benchmarks/baselines/analysis_guided.json
"""

from __future__ import annotations

import argparse
import json
import sys

from conftest import RESULTS_DIR, emit, full_scale, merge_json_rows

from repro.experiments.guided import compare

#: (bench, klass) pairs where the channel verdicts are known to prune;
#: cg and mg carry the strict configs_tested assertions.
WORKLOADS = (("cg", "T"), ("mg", "W"))
FULL_WORKLOADS = (("cg", "T"), ("cg", "S"), ("mg", "W"), ("ep", "T"),
                  ("ft", "T"), ("sp", "T"))


def measure(bench: str, klass: str) -> dict:
    c = compare(bench, klass, refine=True)
    assert c.identical_final, (
        f"{c.workload}: guided search composed a different final config"
    )
    assert c.auto_identical, (
        f"{c.workload}: auto search composed a different final config"
    )
    # The auto run must behave exactly like whichever fixed mode its
    # economics decision selected — no third behaviour.
    expected = c.guided_tested if c.auto_analyzed else c.base_tested
    assert c.auto_tested == expected, (
        f"{c.workload}: auto (analyzed={c.auto_analyzed}) tested "
        f"{c.auto_tested} configs, expected {expected}"
    )
    return {
        "benchmark": c.workload,
        "unguided_configs": c.base_tested,
        "guided_configs": c.guided_tested,
        "pruned": c.pruned,
        "configs_saved": c.saved,
        "configs_saved_pct": round(100.0 * c.saved / max(1, c.base_tested), 1),
        "unguided_wall_s": round(c.base_wall_s, 4),
        "guided_wall_s": round(c.guided_wall_s, 4),
        "wall_reduction_pct": round(
            100.0 * (c.base_wall_s - c.guided_wall_s) / c.base_wall_s, 1
        ),
        "auto_configs": c.auto_tested,
        "auto_wall_s": round(c.auto_wall_s, 4),
        "auto_analyzed": c.auto_analyzed,
        "auto_wall_reduction_pct": round(
            100.0 * (c.base_wall_s - c.auto_wall_s) / c.base_wall_s, 1
        ),
        "identical_final": c.identical_final,
    }


def _format(rows: list[dict]) -> str:
    lines = ["Analysis-guided search — evaluations and wall time saved", ""]
    header = (
        f"{'benchmark':<10} {'unguided':>8} {'guided':>7} {'pruned':>7} "
        f"{'saved':>10} {'wall':>18} {'auto':>16}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        auto_mode = "analyze" if row["auto_analyzed"] else "skip"
        lines.append(
            f"{row['benchmark']:<10} {row['unguided_configs']:>8} "
            f"{row['guided_configs']:>7} {row['pruned']:>7} "
            f"{row['configs_saved']:>4} ({row['configs_saved_pct']:>4.1f}%) "
            f"{row['unguided_wall_s']:>7.2f}s -> {row['guided_wall_s']:>6.2f}s "
            f"{row['auto_wall_s']:>7.2f}s ({auto_mode})"
        )
    return "\n".join(lines)


def _merge_bench_search(payload: dict) -> None:
    """Merge the guided record into BENCH_search.json without clobbering
    the incremental-substrate record that shares the file; rows for a
    workload already present are replaced, not appended."""
    merge_json_rows("BENCH_search", payload, section="guided")


def _assert_strict_savings(rows: list[dict]) -> None:
    for row in rows:
        bench = row["benchmark"].split(".")[0]
        if bench in ("cg", "mg"):
            assert row["guided_configs"] < row["unguided_configs"], (
                f"{row['benchmark']}: guidance saved nothing "
                f"({row['guided_configs']} vs {row['unguided_configs']})"
            )


def run_benchmark() -> dict:
    workloads = FULL_WORKLOADS if full_scale() else WORKLOADS
    rows = [measure(bench, klass) for bench, klass in workloads]
    _assert_strict_savings(rows)
    payload = {"rows": rows, "primary": rows[0]}
    emit("analysis_guided_search", _format(rows))
    _merge_bench_search(payload)
    print(f"merged into {RESULTS_DIR / 'BENCH_search.json'}")
    return payload


def test_analysis_guided_search(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    primary = payload["primary"]
    # Acceptance: guidance prunes at least a fifth of cg.T's
    # evaluations with an identical final configuration.
    assert primary["identical_final"]
    assert primary["configs_saved_pct"] >= 20.0, primary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the payload to this path (besides results/)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a baseline json; exit 1 on >2x regression",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        saved = payload["primary"]["configs_saved_pct"]
        floor = baseline["configs_saved_pct"] / 2.0
        print(
            f"configs saved {saved:.1f}% vs baseline "
            f"{baseline['configs_saved_pct']:.1f}% (floor {floor:.1f}%)"
        )
        if saved < floor:
            print(
                "PERF REGRESSION: analysis guidance saves less than half "
                "the baseline fraction",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
