"""Job-service throughput: one campaign vs four concurrent campaigns.

Hosts a :class:`~repro.service.server.PrecisionService` with an
in-thread worker pool and measures end-to-end job throughput — submit
over the registry, search on the shared coordinator, result written —
for a single campaign and for four campaigns from four tenants running
concurrently.  The concurrent phase submits the *same* policy four
times — the multi-tenant story.  Identical campaigns running
*simultaneously* race: the shared ResultStore only answers outcomes
already decided, so concurrent twins still execute most of their own
evaluations (single-flighting in-flight evaluations across channels is
an open optimization) and the measured hit rate is reported honestly.
The durable dedup property shows up in the **warm** leg: a fifth
same-policy tenant submitted after the batch completes must replay
everything and execute *nothing* on the pool.

Results merge into ``results/BENCH_search.json`` under the
``service`` section so future PRs have a trajectory to compare.

Standalone usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import time

from conftest import emit, merge_json_rows

from repro.cluster import run_worker
from repro.service import PrecisionService
from repro.service.jobs import COMPLETE


def _phase_stats(jobs: list, wall: float) -> dict:
    for job in jobs:
        assert job.state == COMPLETE, (job.job_id, job.error)
    tested = sum(job.tested for job in jobs)
    replayed = sum(job.store_replays for job in jobs)
    return {
        "jobs": len(jobs),
        "wall_s": round(wall, 4),
        "jobs_per_s": round(len(jobs) / wall, 3),
        "configs_per_s": round(tested / wall, 2),
        "tested": tested,
        "executed": sum(job.executions for job in jobs),
        "store_replays": replayed,
        "store_hit_rate": round(replayed / tested, 3) if tested else 0.0,
    }


def _run_phase(jobs: int, workers: int, bench: str, klass: str,
               warm_job: bool = False) -> tuple[dict, dict | None]:
    """One service lifetime: submit *jobs* campaigns at once and wait;
    with ``warm_job`` submit one more same-policy tenant afterwards and
    time it separately (the durable-dedup leg)."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as root:
        service = PrecisionService(root, bind="127.0.0.1:0")
        threads = [
            threading.Thread(
                target=run_worker, args=(service.address,), daemon=True
            )
            for _ in range(workers)
        ]
        for thread in threads:
            thread.start()
        try:
            start = time.perf_counter()
            submitted = [
                service.submit(bench, klass, tenant=f"tenant{i}")
                for i in range(jobs)
            ]
            assert service.wait_all(timeout=600), "jobs never finished"
            stats = _phase_stats(submitted, time.perf_counter() - start)
            warm = None
            if warm_job:
                start = time.perf_counter()
                late = service.submit(bench, klass, tenant="warm")
                assert service.wait_all(timeout=600)
                warm = _phase_stats([late], time.perf_counter() - start)
        finally:
            service.close()
            for thread in threads:
                thread.join(timeout=30)
    return stats, warm


def measure(bench: str = "cg", klass: str = "T", workers: int = 4) -> dict:
    solo, _ = _run_phase(1, workers, bench, klass)
    concurrent, warm = _run_phase(4, workers, bench, klass, warm_job=True)
    # The durable cross-tenant dedup property: a same-policy job
    # submitted after the batch replays everything, executes nothing.
    assert warm["executed"] == 0, warm
    assert warm["store_hit_rate"] == 1.0, warm
    return {
        "benchmark": f"{bench}.{klass}",
        "workers": workers,
        "solo": solo,
        "concurrent": concurrent,
        "warm": warm,
        "concurrency_speedup": round(
            concurrent["jobs_per_s"] / solo["jobs_per_s"], 2
        ),
    }


def _format(row: dict) -> str:
    lines = [
        "Job service — campaign throughput (1 vs 4 concurrent tenants)",
        "",
        f"{row['benchmark']}, {row['workers']} pool workers",
        f"{'phase':<12} {'jobs':>5} {'wall s':>8} {'jobs/s':>7} "
        f"{'cfg/s':>7} {'hit rate':>9}",
    ]
    for phase in ("solo", "concurrent", "warm"):
        p = row[phase]
        lines.append(
            f"{phase:<12} {p['jobs']:>5} {p['wall_s']:>8.2f} "
            f"{p['jobs_per_s']:>7.2f} {p['configs_per_s']:>7.1f} "
            f"{p['store_hit_rate']:>8.1%}"
        )
    lines.append(
        f"4-tenant job throughput {row['concurrency_speedup']}x the "
        f"single-tenant rate; warm same-policy job executed "
        f"{row['warm']['executed']} configs"
    )
    return "\n".join(lines)


def run_benchmark() -> dict:
    row = measure()
    payload = {"rows": [row], "primary": row}
    emit("service_throughput", _format(row))
    path = merge_json_rows("BENCH_search", payload, section="service")
    print(f"wrote {path}")
    return payload


def test_service_throughput(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    primary = payload["primary"]
    # Acceptance: concurrency must help, never hurt — four tenants on a
    # shared pool with shared dedup finish jobs at a higher rate than
    # one tenant alone.
    assert primary["concurrency_speedup"] >= 1.0, primary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="cg", help="NAS benchmark name")
    parser.add_argument("--class", dest="klass", default="T",
                        help="problem class")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool workers (default 4)")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the payload to this path (besides results/)",
    )
    args = parser.parse_args(argv)

    row = measure(args.bench, args.klass, args.workers)
    payload = {"rows": [row], "primary": row}
    emit("service_throughput", _format(row))
    merge_json_rows("BENCH_search", payload, section="service")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
